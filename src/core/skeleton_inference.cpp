#include "core/skeleton_inference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "dsp/fft.h"

namespace skh::core {

namespace {

/// Normalize an unordered pair so set operations are well-defined.
EndpointPair normalized(Endpoint a, Endpoint b) {
  if (b < a) std::swap(a, b);
  return EndpointPair{a, b};
}

/// Ring edges over group member indices (callers pass DP-rank order).
void add_ring_pairs(const std::vector<std::size_t>& members,
                    const std::vector<EndpointObservation>& obs,
                    std::set<EndpointPair>& out) {
  const std::size_t n = members.size();
  if (n < 2) return;
  if (n == 2) {
    out.insert(normalized(obs[members[0]].endpoint, obs[members[1]].endpoint));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.insert(normalized(obs[members[i]].endpoint,
                          obs[members[(i + 1) % n]].endpoint));
  }
}

/// Double-binary-tree edges over group member indices (mirrors the NCCL
/// pattern assumed by the traffic model).
void add_tree_pairs(const std::vector<std::size_t>& members,
                    const std::vector<EndpointObservation>& obs,
                    std::set<EndpointPair>& out) {
  const std::size_t n = members.size();
  if (n < 2) return;
  for (std::size_t child = 1; child < n; ++child) {
    const std::size_t parent = (child - 1) / 2;
    out.insert(normalized(obs[members[parent]].endpoint,
                          obs[members[child]].endpoint));
    out.insert(normalized(obs[members[n - 1 - parent]].endpoint,
                          obs[members[n - 1 - child]].endpoint));
  }
}

/// Median lag of a group's member series relative to `reference`.
int group_lag(const std::vector<std::size_t>& members,
              const std::vector<EndpointObservation>& obs,
              const std::vector<double>& reference) {
  std::vector<int> lags;
  lags.reserve(members.size());
  for (std::size_t m : members) {
    lags.push_back(dsp::best_lag(reference, obs[m].throughput));
  }
  return median_lag(std::move(lags));
}

}  // namespace

int median_lag(std::vector<int> lags) {
  std::sort(lags.begin(), lags.end());
  return lags[(lags.size() - 1) / 2];
}

std::vector<int> merge_lag_levels(std::vector<int> lags, int tolerance) {
  std::sort(lags.begin(), lags.end());
  std::vector<int> anchors;
  for (int lag : lags) {
    if (anchors.empty() || lag - anchors.back() > tolerance) {
      anchors.push_back(lag);
    }
  }
  return anchors;
}

std::optional<InferredSkeleton> infer_skeleton(
    const std::vector<EndpointObservation>& observations,
    const InferenceConfig& cfg) {
  const std::size_t n = observations.size();
  if (n < 4) return std::nullopt;

  // 1. Frequency-domain features of every endpoint's burst series.
  ml::FeatureMatrix features;
  features.reserve(n);
  for (const auto& o : observations) {
    features.push_back(dsp::stft_feature(o.throughput, cfg.stft));
  }

  // 2. Constrained clustering (Eq. 1-3) into position groups.
  ml::ConstrainedClusterConfig ccfg;
  ccfg.host_of.reserve(n);
  for (const auto& o : observations) ccfg.host_of.push_back(o.host);
  if (!cfg.candidate_dp.empty()) {
    for (std::uint32_t dp : cfg.candidate_dp) {
      if (dp >= 2 && n % dp == 0) ccfg.candidate_ks.push_back(n / dp);
    }
  } else {
    for (std::uint32_t dp = 2; dp <= n / 2; ++dp) {
      if (n % dp == 0) ccfg.candidate_ks.push_back(n / dp);
    }
  }
  const auto clustering = ml::constrained_cluster(features, ccfg);
  if (!clustering) return std::nullopt;

  InferredSkeleton out;
  out.num_groups = static_cast<std::uint32_t>(clustering->num_clusters());
  out.dp = static_cast<std::uint32_t>(n / clustering->num_clusters());

  // 3. Order each group's members by container index: the CSP-visible
  // launch order fixes the DP-rank order (rank d's containers come before
  // rank d+1's in every framework's rendezvous).
  out.position_groups = clustering->clusters;
  for (auto& group : out.position_groups) {
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t b) {
      const auto& oa = observations[a];
      const auto& ob = observations[b];
      if (oa.container_index != ob.container_index) {
        return oa.container_index < ob.container_index;
      }
      return oa.rnic_rank < ob.rnic_rank;
    });
  }

  // 4. Pipeline-stage levels from burst time shifts: the first stage bursts
  // earliest (§5.1). Groups whose lags agree within the tolerance share a
  // stage level.
  const auto& reference = observations[out.position_groups[0][0]].throughput;
  std::vector<int> lags(out.position_groups.size());
  for (std::size_t g = 0; g < out.position_groups.size(); ++g) {
    lags[g] = group_lag(out.position_groups[g], observations, reference);
  }
  // Anchored level merging: see merge_lag_levels for why the comparison is
  // against each level's first lag rather than the previous member.
  const std::vector<int> level_reps =
      merge_lag_levels(lags, cfg.lag_merge_tolerance);
  out.pp = static_cast<std::uint32_t>(level_reps.size());
  out.stage_of_group.resize(out.position_groups.size());
  for (std::size_t g = 0; g < out.position_groups.size(); ++g) {
    std::uint32_t level = 0;
    int best = std::numeric_limits<int>::max();
    for (std::size_t l = 0; l < level_reps.size(); ++l) {
      const int d = std::abs(lags[g] - level_reps[l]);
      if (d < best) {
        best = d;
        level = static_cast<std::uint32_t>(l);
      }
    }
    out.stage_of_group[g] = level;
  }

  // 5. Skeleton pairs.
  std::set<EndpointPair> pairs;
  for (const auto& group : out.position_groups) {
    add_ring_pairs(group, observations, pairs);
    if (cfg.include_tree_edges) add_tree_pairs(group, observations, pairs);
  }
  // Pipeline neighbors: adjacent-stage groups on the same RNIC rank, member
  // i of one group paired with member i of the other (same DP replica).
  auto rank_of_group = [&](const std::vector<std::size_t>& g) {
    return observations[g[0]].rnic_rank;
  };
  for (std::size_t g1 = 0; g1 < out.position_groups.size(); ++g1) {
    for (std::size_t g2 = g1 + 1; g2 < out.position_groups.size(); ++g2) {
      const auto s1 = out.stage_of_group[g1];
      const auto s2 = out.stage_of_group[g2];
      if (s1 + 1 != s2 && s2 + 1 != s1) continue;
      if (rank_of_group(out.position_groups[g1]) !=
          rank_of_group(out.position_groups[g2])) {
        continue;
      }
      const auto& a = out.position_groups[g1];
      const auto& b = out.position_groups[g2];
      const std::size_t count = std::min(a.size(), b.size());
      for (std::size_t i = 0; i < count; ++i) {
        pairs.insert(
            normalized(observations[a[i]].endpoint, observations[b[i]].endpoint));
      }
    }
  }
  out.pairs.assign(pairs.begin(), pairs.end());
  return out;
}

SkeletonQuality evaluate_skeleton(const std::vector<EndpointPair>& inferred,
                                  const std::vector<EndpointPair>& truth) {
  std::set<EndpointPair> inf;
  for (const auto& p : inferred) inf.insert(normalized(p.src, p.dst));
  std::set<EndpointPair> tru;
  for (const auto& p : truth) tru.insert(normalized(p.src, p.dst));

  std::size_t hit = 0;
  for (const auto& p : inf) {
    if (tru.contains(p)) ++hit;
  }
  SkeletonQuality q;
  q.inferred_pairs = inf.size();
  q.true_pairs = tru.size();
  q.coverage = tru.empty() ? 1.0
                           : static_cast<double>(hit) /
                                 static_cast<double>(tru.size());
  q.excess = inf.empty() ? 0.0
                         : static_cast<double>(inf.size() - hit) /
                               static_cast<double>(inf.size());
  return q;
}

}  // namespace skh::core
