// Optimistic overlay-underlay disentanglement (§5.3, Algorithm 1).
//
// Given the set of endpoint pairs flagged by the anomaly detector for one
// failure case, the localizer:
//   1. replays each pair's logical overlay forwarding chain — a missing
//      flow rule or a loop pinpoints the overlay component (lines 7-15 of
//      Algorithm 1),
//   2. otherwise votes over the pairs' physical (ECMP-selected) paths: a
//      link/switch crossed by more than one anomalous pair is the underlay
//      suspect (lines 16-21, network-tomography intersection); uplink
//      verdicts that the switch logs do not confirm are re-attributed to
//      the RNIC behind the port,
//   3. otherwise validates the RNICs connecting the two layers by dumping
//      and diffing OVS vs RNIC-offloaded flow tables (the Figure 18 case),
//   4. otherwise classifies by the anomalous pairs' endpoint pattern
//      (single shared endpoint => RNIC; several rails of one host => host
//      scope, disambiguated by OVS/host config inspection).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/diagnostics.h"
#include "obs/context.h"
#include "overlay/overlay.h"
#include "probe/traceroute.h"
#include "sim/fault.h"
#include "topo/topology.h"

namespace skh::core {

/// The physical link a traceroute died on, if any. A hop can be dead
/// without carrying a valid link id — death at the source (silent
/// everywhere) or at the destination host/RNIC — and such hops contribute
/// no link verdict.
[[nodiscard]] std::optional<LinkId> dead_link_of(
    const probe::TracerouteResult& tr);

enum class LocalizationMethod : std::uint8_t {
  kOverlayReachability,
  kPhysicalIntersection,
  kRnicValidation,
  kEndpointPattern,
  kUnlocalized,
};

[[nodiscard]] std::string_view to_string(LocalizationMethod m) noexcept;

struct Localization {
  std::vector<sim::ComponentRef> culprits;
  LocalizationMethod method = LocalizationMethod::kUnlocalized;

  [[nodiscard]] bool found() const noexcept { return !culprits.empty(); }
};

/// Result of one overlay forwarding-chain replay.
struct OverlayVerdict {
  bool reachable = false;
  bool loop = false;
  /// Node at which the walk broke / looped; invalid when reachable.
  VPortId failure_point;
};

class Localizer {
 public:
  Localizer(const topo::Topology& topo,
            const overlay::OverlayNetwork& overlay, DiagnosticsOracle& oracle,
            const sim::FaultInjector& faults);

  /// Attach the observability context (nullptr detaches): per-method
  /// verdict counters plus trace instants for vote rounds and traceroute
  /// refinement.
  void attach_obs(obs::Context* ctx);

  /// Full Algorithm-1 pipeline over one failure case.
  [[nodiscard]] Localization localize(
      const std::vector<EndpointPair>& anomalous_pairs, SimTime at);

  // --- Algorithm 1 building blocks (exposed for unit tests) ---------------
  /// OverlayReachability(L_O): replay the logical chain of one pair.
  [[nodiscard]] OverlayVerdict overlay_reachability(Endpoint src,
                                                    Endpoint dst) const;

  /// PhysicalIntersection(L_U): vote links/switches over the pairs' paths.
  /// Returns the max-count components when any count exceeds one.
  [[nodiscard]] std::vector<sim::ComponentRef> physical_intersection(
      const std::vector<EndpointPair>& pairs) const;

  /// Validate the RNICs of the pairs' endpoints: dump OVS vs offloaded flow
  /// tables and return RNICs with inconsistencies.
  [[nodiscard]] std::vector<sim::ComponentRef> validate_rnics(
      const std::vector<EndpointPair>& pairs) const;

  /// Host-agent traceroute refinement (§5.3): when intersection voting ties
  /// between several links, replay the pairs' paths hop by hop and keep the
  /// links traceroutes actually die on.
  [[nodiscard]] std::vector<sim::ComponentRef> refine_with_traceroute(
      const std::vector<EndpointPair>& pairs,
      std::vector<sim::ComponentRef> voted, SimTime at) const;

 private:
  [[nodiscard]] sim::ComponentRef component_of_overlay_node(
      VPortId node, bool loop) const;
  [[nodiscard]] Localization endpoint_pattern(
      const std::vector<EndpointPair>& pairs, SimTime at);
  [[nodiscard]] Localization localize_impl(
      const std::vector<EndpointPair>& anomalous_pairs, SimTime at);

  const topo::Topology& topo_;
  const overlay::OverlayNetwork& overlay_;
  DiagnosticsOracle& oracle_;
  const sim::FaultInjector& faults_;

  obs::Context* obs_ = nullptr;
  obs::Counter m_calls_;
  /// Indexed by LocalizationMethod.
  obs::Counter m_method_[5];
};

}  // namespace skh::core
