// Optimistic overlay-underlay disentanglement (§5.3, Algorithm 1).
//
// Given the set of endpoint pairs flagged by the anomaly detector for one
// failure case, the localizer:
//   1. replays each pair's logical overlay forwarding chain — a missing
//      flow rule or a loop pinpoints the overlay component (lines 7-15 of
//      Algorithm 1),
//   2. otherwise votes over the pairs' physical (ECMP-selected) paths: a
//      link/switch crossed by more than one anomalous pair is the underlay
//      suspect (lines 16-21, network-tomography intersection); uplink
//      verdicts that the switch logs do not confirm are re-attributed to
//      the RNIC behind the port,
//   3. otherwise validates the RNICs connecting the two layers by dumping
//      and diffing OVS vs RNIC-offloaded flow tables (the Figure 18 case),
//   4. otherwise classifies by the anomalous pairs' endpoint pattern
//      (single shared endpoint => RNIC; several rails of one host => host
//      scope, disambiguated by OVS/host config inspection).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/diagnostics.h"
#include "obs/context.h"
#include "overlay/overlay.h"
#include "probe/traceroute.h"
#include "sim/fault.h"
#include "topo/topology.h"

namespace skh::core {

/// The physical link a traceroute died on, if any. A hop can be dead
/// without carrying a valid link id — death at the source (silent
/// everywhere) or at the destination host/RNIC — and such hops contribute
/// no link verdict.
[[nodiscard]] std::optional<LinkId> dead_link_of(
    const probe::TracerouteResult& tr);

enum class LocalizationMethod : std::uint8_t {
  kOverlayReachability,
  kPhysicalIntersection,
  kRnicValidation,
  kEndpointPattern,
  kUnlocalized,
  /// Collective signal plane: the verdict came from a hang/straggler
  /// wait-for chain, not from Algorithm 1 (no anomalous probe pairs
  /// exist for a network-silent case).
  kCollectiveChain,
};

[[nodiscard]] std::string_view to_string(LocalizationMethod m) noexcept;

/// One piece of localization evidence: a component some source implicated
/// and how strongly. Sources: "intersection" (forward-path vote counts),
/// "reverse-path" (half-weight votes from the pairs' return routes),
/// "path" (votes scoped to the equal-cost member a sprayed anomaly named),
/// "traceroute" (prefix-weighted death votes), or the method name for
/// verdicts whose step produces no intermediate tally (overlay,
/// RNIC validation, endpoint pattern — weight 1 per culprit). The flight
/// recorder persists these so a forensic bundle shows *why* a component
/// was named, not just which.
struct LocalizationVote {
  sim::ComponentRef component;
  double weight = 0.0;
  const char* source = "";  ///< static string
};

struct Localization {
  std::vector<sim::ComponentRef> culprits;
  LocalizationMethod method = LocalizationMethod::kUnlocalized;
  /// How much of the evidence the verdict rests on was actually observed.
  /// 1.0 when every consulted signal answered (the honest-plane case);
  /// traceroute refinement under per-hop response loss lowers it to the
  /// fraction of observable hops that responded. Surfaced on FailureCase.
  double confidence = 1.0;
  /// The evidence tally behind the verdict (deterministic order).
  std::vector<LocalizationVote> votes;

  [[nodiscard]] bool found() const noexcept { return !culprits.empty(); }
};

/// A path-scoped anomaly hint: the detector flagged this pair on one
/// specific equal-cost member (an `AnomalyEvent` whose `path_id` is not
/// `kAnyPath`). Hinted pairs vote only on the components of
/// `route_via(src, dst, path_id)` — the member the evidence actually rode —
/// instead of the static ECMP selection, which under spray may never have
/// carried the anomalous probes at all.
struct PathScopedAnomaly {
  EndpointPair pair;
  std::uint32_t path_id = 0;
};

struct LocalizerConfig {
  /// Traceroute-refined verdicts are demoted to kUnlocalized only when
  /// hop coverage falls below this fraction — partial evidence still
  /// localizes (with reduced confidence); near-total blindness does not.
  double min_traceroute_coverage = 0.25;
};

/// Outcome of the traceroute refinement pass, with the evidence quality
/// the vote was computed from (exposed for unit tests).
struct TracerouteRefinement {
  std::vector<sim::ComponentRef> culprits;
  /// Responded fraction of the hops that were observable across all
  /// replayed paths (1.0 when refinement was skipped or every reply came
  /// back).
  double coverage = 1.0;
  bool ran = false;  ///< whether traceroutes were actually issued
  /// Per-link death votes (source "traceroute"), link-index order.
  std::vector<LocalizationVote> votes;
};

/// Result of one overlay forwarding-chain replay.
struct OverlayVerdict {
  bool reachable = false;
  bool loop = false;
  /// Node at which the walk broke / looped; invalid when reachable.
  VPortId failure_point;
};

class Localizer {
 public:
  Localizer(const topo::Topology& topo,
            const overlay::OverlayNetwork& overlay, DiagnosticsOracle& oracle,
            const sim::FaultInjector& faults, LocalizerConfig cfg = {});

  /// Attach the observability context (nullptr detaches): per-method
  /// verdict counters plus trace instants for vote rounds and traceroute
  /// refinement.
  void attach_obs(obs::Context* ctx);

  /// Attach a gray-telemetry plan (nullptr detaches): traceroute replays
  /// then lose individual hop responses per the plan's kTracerouteHopLoss
  /// episodes, drawing from `rng`. The pointer must outlive the localizer.
  void attach_telemetry(const sim::TelemetryFaultPlan* plan, RngStream rng);

  /// Full Algorithm-1 pipeline over one failure case.
  [[nodiscard]] Localization localize(
      const std::vector<EndpointPair>& anomalous_pairs, SimTime at);

  /// Same pipeline with path-scoped evidence: pairs listed in `path_hints`
  /// vote only on their hinted equal-cost members' components (spray-aware
  /// tomography). The 2-arg form is equivalent to an empty hint span.
  [[nodiscard]] Localization localize(
      const std::vector<EndpointPair>& anomalous_pairs, SimTime at,
      std::span<const PathScopedAnomaly> path_hints);

  // --- Algorithm 1 building blocks (exposed for unit tests) ---------------
  /// OverlayReachability(L_O): replay the logical chain of one pair.
  [[nodiscard]] OverlayVerdict overlay_reachability(Endpoint src,
                                                    Endpoint dst) const;

  /// PhysicalIntersection(L_U): vote links/switches over the pairs' paths.
  /// Each unhinted pair contributes weight 1 to every component of its
  /// forward route and weight 0.5 to components crossed only by its reverse
  /// route `route(dst, src)` — return traffic rides it, and a return-only
  /// fault degrades the pair just the same, so reverse components must be
  /// candidates (at reduced confidence: the forward direction was observed,
  /// the reverse is inferred). Hinted pairs contribute weight 1 to their
  /// hinted members' components only. Returns the max-weight components
  /// when the best weight strictly exceeds one pair's worth of evidence.
  [[nodiscard]] std::vector<sim::ComponentRef> physical_intersection(
      const std::vector<EndpointPair>& pairs) const;
  [[nodiscard]] std::vector<sim::ComponentRef> physical_intersection(
      const std::vector<EndpointPair>& pairs,
      std::span<const PathScopedAnomaly> path_hints) const;

  /// The raw tally behind physical_intersection, in ComponentRef order per
  /// source: "intersection" entries (forward crossings, count ≥ 2 —
  /// byte-identical to the pre-path-diversity record), then "reverse-path"
  /// entries (0.5 x reverse crossings, ≥ 2 of them), then "path" entries
  /// (hinted-member crossings, count ≥ 2).
  [[nodiscard]] std::vector<LocalizationVote> physical_intersection_votes(
      const std::vector<EndpointPair>& pairs) const;
  [[nodiscard]] std::vector<LocalizationVote> physical_intersection_votes(
      const std::vector<EndpointPair>& pairs,
      std::span<const PathScopedAnomaly> path_hints) const;

  /// Validate the RNICs of the pairs' endpoints: dump OVS vs offloaded flow
  /// tables and return RNICs with inconsistencies.
  [[nodiscard]] std::vector<sim::ComponentRef> validate_rnics(
      const std::vector<EndpointPair>& pairs) const;

  /// Host-agent traceroute refinement (§5.3): when intersection voting ties
  /// between several links, replay the pairs' paths hop by hop and keep the
  /// links traceroutes actually die on. Hop-loss tolerant: the death point
  /// of a path is the start of its maximal silent SUFFIX (a silent hop
  /// followed by a responding one is a lost reply, not a dead hop), each
  /// vote is weighted by the fraction of the pre-death prefix that
  /// responded, and overall hop coverage is reported for the confidence
  /// score / demotion threshold.
  [[nodiscard]] TracerouteRefinement refine_with_traceroute_ex(
      const std::vector<EndpointPair>& pairs,
      std::vector<sim::ComponentRef> voted, SimTime at) const;

  /// Culprits-only convenience wrapper around refine_with_traceroute_ex.
  [[nodiscard]] std::vector<sim::ComponentRef> refine_with_traceroute(
      const std::vector<EndpointPair>& pairs,
      std::vector<sim::ComponentRef> voted, SimTime at) const;

 private:
  /// Per-component evidence accumulated by tally_paths. `weight` is the
  /// max-merged decision weight (per pair: 1.0 forward / hinted, 0.5
  /// reverse-only); `touched` the distinct pairs contributing any of it;
  /// the remaining fields are the per-source crossing counts behind the
  /// vote record.
  struct PathTally {
    double weight = 0.0;
    std::size_t touched = 0;
    std::size_t fwd = 0;
    std::size_t rev = 0;
    std::size_t path = 0;
  };
  [[nodiscard]] std::map<sim::ComponentRef, PathTally> tally_paths(
      const std::vector<EndpointPair>& pairs,
      std::span<const PathScopedAnomaly> path_hints) const;

  [[nodiscard]] sim::ComponentRef component_of_overlay_node(
      VPortId node, bool loop) const;
  [[nodiscard]] Localization endpoint_pattern(
      const std::vector<EndpointPair>& pairs, SimTime at);
  [[nodiscard]] Localization localize_impl(
      const std::vector<EndpointPair>& anomalous_pairs, SimTime at,
      std::span<const PathScopedAnomaly> path_hints);

  const topo::Topology& topo_;
  const overlay::OverlayNetwork& overlay_;
  DiagnosticsOracle& oracle_;
  const sim::FaultInjector& faults_;
  LocalizerConfig cfg_;

  const sim::TelemetryFaultPlan* telemetry_ = nullptr;
  /// Traceroute hop-loss draws; mutable because refinement is logically
  /// const (it only reads network state) but the gray plane consumes
  /// randomness.
  mutable RngStream telemetry_rng_{0};

  obs::Context* obs_ = nullptr;
  obs::Counter m_calls_;
  /// Indexed by LocalizationMethod.
  obs::Counter m_method_[6];
  /// "path"-source vote records emitted (spray-aware tomography evidence).
  obs::Counter m_path_votes_;
};

}  // namespace skh::core
