// Forensic bundle: the self-contained JSON artifact emitted for every
// failure case, assembled from the flight recorder's rings at the moment
// the case opens and finalized when it closes.
//
// A bundle is what an on-call engineer gets attached to the ticket: the
// case identity and verdict, its causal timeline, the offending pairs'
// recent closed-window summaries (with LOF / z scores), the anomaly events
// that fed the case, the localization votes with their evidence source and
// weight, the recorder's dropped-record accounting (so wrapped history is
// visible, never silent), and a registry snapshot of counters/gauges at
// emission time. It parses as standard JSON (see obs/json_lint.h) and
// needs nothing else from the campaign to be interpreted.
#pragma once

#include <string>

#include "core/sharded_detector.h"
#include "core/skeleton_hunter.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace skh::core {

/// Build the forensic bundle JSON for one failure case.
///
/// `recorder` supplies window/event/vote history and drop accounting; pass
/// nullptr for a bundle with empty history sections (recorder disabled).
/// `metrics` is the registry snapshot embedded under "metrics"; nullptr
/// omits the section body. `detector` resolves pair -> stable gid for the
/// recorder's per-pair window rings; pairs the detector no longer knows
/// get an empty window list.
[[nodiscard]] std::string forensic_bundle_json(
    const FailureCase& c, const ShardedDetector& detector,
    const obs::FlightRecorder* recorder, const obs::MetricsSnapshot* metrics);

}  // namespace skh::core
