#include "core/blacklist.h"

namespace skh::core {

void Blacklist::add(sim::ComponentRef ref, SimTime at) {
  entries_.emplace(ref, at);
}

void Blacklist::clear(sim::ComponentRef ref) { entries_.erase(ref); }

bool Blacklist::contains(sim::ComponentRef ref) const {
  return entries_.contains(ref);
}

std::vector<sim::ComponentRef> Blacklist::entries() const {
  std::vector<sim::ComponentRef> out;
  out.reserve(entries_.size());
  for (const auto& [ref, at] : entries_) out.push_back(ref);
  return out;
}

bool Blacklist::host_schedulable(HostId host,
                                 std::uint32_t rails_per_host) const {
  if (contains({sim::ComponentKind::kHost, host.value()})) return false;
  if (contains({sim::ComponentKind::kVSwitch, host.value()})) return false;
  for (std::uint32_t r = 0; r < rails_per_host; ++r) {
    const std::uint32_t rnic = host.value() * rails_per_host + r;
    if (contains({sim::ComponentKind::kRnic, rnic})) return false;
  }
  return true;
}

}  // namespace skh::core
