#include "core/blacklist.h"

namespace skh::core {

BanOutcome Blacklist::add(sim::ComponentRef ref, SimTime at) {
  auto [it, inserted] = entries_.try_emplace(ref);
  Entry& e = it->second;
  if (!inserted && e.active) return BanOutcome::kAlreadyBanned;
  const bool flap = !inserted && at - e.cleared_at < flap_hysteresis_;
  e.banned_at = at;
  e.active = true;
  ++active_;
  if (flap) {
    ++flap_rebans_;
    return BanOutcome::kFlapReban;
  }
  return BanOutcome::kNewBan;
}

void Blacklist::clear(sim::ComponentRef ref, SimTime at) {
  const auto it = entries_.find(ref);
  if (it == entries_.end() || !it->second.active) return;
  it->second.active = false;
  it->second.cleared_at = at;
  --active_;
}

bool Blacklist::contains(sim::ComponentRef ref) const {
  const auto it = entries_.find(ref);
  return it != entries_.end() && it->second.active;
}

std::vector<sim::ComponentRef> Blacklist::entries() const {
  std::vector<sim::ComponentRef> out;
  out.reserve(active_);
  for (const auto& [ref, e] : entries_) {
    if (e.active) out.push_back(ref);
  }
  return out;
}

bool Blacklist::host_schedulable(HostId host,
                                 std::uint32_t rails_per_host) const {
  if (contains({sim::ComponentKind::kHost, host.value()})) return false;
  if (contains({sim::ComponentKind::kVSwitch, host.value()})) return false;
  for (std::uint32_t r = 0; r < rails_per_host; ++r) {
    const std::uint32_t rnic = host.value() * rails_per_host + r;
    if (contains({sim::ComponentKind::kRnic, rnic})) return false;
  }
  return true;
}

}  // namespace skh::core
