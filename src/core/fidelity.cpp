#include "core/fidelity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "dsp/fft.h"

namespace skh::core {

double burstiness(std::span<const double> series) {
  if (series.empty()) return 0.0;
  double mean = 0.0;
  double peak = 0.0;
  for (double v : series) {
    mean += v;
    peak = std::max(peak, v);
  }
  mean /= static_cast<double>(series.size());
  if (mean <= 1e-9) return 0.0;
  return peak / mean;
}

double best_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const std::size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  std::vector<double> da(n), db(n);
  double va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    da[i] = a[i] - ma;
    db[i] = b[i] - mb;
    va += da[i] * da[i];
    vb += db[i] * db[i];
  }
  if (va <= 1e-12 || vb <= 1e-12) return 0.0;
  // Max over lags of the circular cross-correlation, normalized.
  const auto corr = dsp::circular_xcorr(da, db);
  double best = 0.0;
  for (double c : corr) best = std::max(best, c);
  return best / std::sqrt(va * vb);
}

FidelityReport validate_skeleton(
    const std::vector<EndpointPair>& skeleton_pairs,
    const std::vector<EndpointObservation>& observations,
    const FidelityConfig& cfg) {
  FidelityReport rep;
  if (observations.empty()) return rep;

  std::map<Endpoint, const EndpointObservation*> by_endpoint;
  std::set<Endpoint> active;
  for (const auto& o : observations) {
    by_endpoint[o.endpoint] = &o;
    const double peak =
        o.throughput.empty()
            ? 0.0
            : *std::max_element(o.throughput.begin(), o.throughput.end());
    if (peak >= cfg.min_peak_gbps &&
        burstiness(o.throughput) >= cfg.min_burstiness) {
      active.insert(o.endpoint);
    }
  }
  rep.active_fraction = static_cast<double>(active.size()) /
                        static_cast<double>(observations.size());

  // Pair alignment: paired endpoints' series should correlate.
  std::size_t aligned = 0;
  std::size_t judged = 0;
  std::set<Endpoint> covered;
  for (const auto& p : skeleton_pairs) {
    const auto sit = by_endpoint.find(p.src);
    const auto dit = by_endpoint.find(p.dst);
    if (sit == by_endpoint.end() || dit == by_endpoint.end()) continue;
    covered.insert(p.src);
    covered.insert(p.dst);
    ++judged;
    if (best_correlation(sit->second->throughput, dit->second->throughput) >=
        cfg.min_pair_correlation) {
      ++aligned;
    }
  }
  rep.pair_alignment =
      judged == 0 ? 0.0
                  : static_cast<double>(aligned) / static_cast<double>(judged);

  // Active coverage: every training endpoint must be probed by something.
  if (!active.empty()) {
    std::size_t hit = 0;
    for (const Endpoint& e : active) {
      if (covered.contains(e)) ++hit;
    }
    rep.active_coverage =
        static_cast<double>(hit) / static_cast<double>(active.size());
  } else {
    rep.active_coverage = 0.0;
  }

  // An idle cluster (§7.3's debug case) yields no trustworthy skeleton.
  rep.score = rep.active_fraction < 0.25
                  ? 0.0
                  : std::min(rep.pair_alignment, rep.active_coverage);
  return rep;
}

}  // namespace skh::core
