#include "core/localize.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "probe/traceroute.h"

namespace skh::core {

std::string_view to_string(LocalizationMethod m) noexcept {
  switch (m) {
    case LocalizationMethod::kOverlayReachability:
      return "overlay-reachability";
    case LocalizationMethod::kPhysicalIntersection:
      return "physical-intersection";
    case LocalizationMethod::kRnicValidation: return "rnic-validation";
    case LocalizationMethod::kEndpointPattern: return "endpoint-pattern";
    case LocalizationMethod::kUnlocalized: return "unlocalized";
    case LocalizationMethod::kCollectiveChain: return "collective-chain";
  }
  return "unknown";
}

std::optional<LinkId> dead_link_of(const probe::TracerouteResult& tr) {
  const auto dead = tr.first_dead_hop();
  if (!dead) return std::nullopt;
  const LinkId link = tr.hops[*dead].link;
  if (!link.valid()) return std::nullopt;
  return link;
}

Localizer::Localizer(const topo::Topology& topo,
                     const overlay::OverlayNetwork& overlay,
                     DiagnosticsOracle& oracle,
                     const sim::FaultInjector& faults, LocalizerConfig cfg)
    : topo_(topo), overlay_(overlay), oracle_(oracle), faults_(faults),
      cfg_(cfg) {}

void Localizer::attach_telemetry(const sim::TelemetryFaultPlan* plan,
                                 RngStream rng) {
  telemetry_ = plan;
  telemetry_rng_ = rng;
}

void Localizer::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  if (ctx == nullptr) {
    m_calls_ = {};
    m_path_votes_ = {};
    for (auto& m : m_method_) m = {};
    return;
  }
  auto& r = ctx->registry;
  m_calls_ = r.bind_counter(r.counter_id("localize.calls"));
  m_path_votes_ = r.bind_counter(r.counter_id("localize.path_votes"));
  static constexpr const char* kMethodMetric[6] = {
      "localize.method.overlay_reachability",
      "localize.method.physical_intersection",
      "localize.method.rnic_validation",
      "localize.method.endpoint_pattern",
      "localize.method.unlocalized",
      "localize.method.collective_chain",
  };
  for (std::size_t i = 0; i < 6; ++i) {
    m_method_[i] = r.bind_counter(r.counter_id(kMethodMetric[i]));
  }
}

TracerouteRefinement Localizer::refine_with_traceroute_ex(
    const std::vector<EndpointPair>& pairs,
    std::vector<sim::ComponentRef> voted, SimTime at) const {
  TracerouteRefinement out;
  // Only meaningful when several links tie and the failure is a hard break
  // a traceroute can die on.
  std::size_t link_candidates = 0;
  for (const auto& c : voted) {
    if (c.kind == sim::ComponentKind::kPhysicalLink) ++link_candidates;
  }
  if (link_candidates < 2) {
    out.culprits = std::move(voted);
    return out;
  }
  out.ran = true;

  const double hop_loss =
      telemetry_ == nullptr
          ? 0.0
          : telemetry_->magnitude_at(
                sim::TelemetryFaultKind::kTracerouteHopLoss, at);
  std::map<std::uint32_t, double> dead_votes;  // link index -> vote weight
  double observed_hops = 0.0;
  double observable_hops = 0.0;
  for (const auto& p : pairs) {
    const auto tr = probe::traceroute(
        topo_, faults_, p.src.rnic, p.dst.rnic, at, hop_loss,
        hop_loss > 0.0 ? &telemetry_rng_ : nullptr);
    if (tr.hops.empty()) continue;  // intra-host path: no underlay evidence
    std::size_t responded = 0;
    std::size_t suffix = 0;  // index after the last responding hop
    for (std::size_t k = 0; k < tr.hops.size(); ++k) {
      if (tr.hops[k].responded) {
        ++responded;
        suffix = k + 1;
      }
    }
    if (tr.reached_destination) {
      // Healthy replay: every hop was observable (responses could still be
      // lost mid-path without stopping the trace).
      observed_hops += static_cast<double>(responded);
      observable_hops += static_cast<double>(tr.hops.size());
      continue;
    }
    // Dead path. A silent hop FOLLOWED by a responding one is a lost reply
    // (transit clearly worked), so the death point is the start of the
    // maximal silent suffix. Hops before it were observable.
    observed_hops += static_cast<double>(responded);
    observable_hops += static_cast<double>(suffix);
    if (responded == 0) {
      if (hop_loss > 0.0) continue;  // fully blind: death vs loss undecidable
      // Honest plane, everything silent: genuine death at the first hop.
      if (tr.hops.front().link.valid()) {
        dead_votes[tr.hops.front().link.value()] += 1.0;
      }
      continue;
    }
    const LinkId death = tr.hops[suffix].link;
    if (!death.valid()) continue;
    // Weight by how much of the pre-death prefix actually responded: a
    // fully observed prefix is a certain vote (weight 1, the honest-plane
    // value); a gappy one might place the death too early.
    dead_votes[death.value()] +=
        static_cast<double>(responded) / static_cast<double>(suffix);
  }
  out.coverage =
      observable_hops > 0.0 ? observed_hops / observable_hops : 1.0;
  for (const auto& [l, w] : dead_votes) {
    out.votes.push_back(LocalizationVote{
        {sim::ComponentKind::kPhysicalLink, l}, w, "traceroute"});
  }
  if (obs_ != nullptr) {
    obs_->tracer.instant("localize", "traceroute.refine", at, link_candidates,
                         dead_votes.size(), out.coverage);
  }
  if (dead_votes.empty()) {
    out.culprits = std::move(voted);  // soft failure; keep the tie
    return out;
  }
  double best = 0.0;
  for (const auto& [l, w] : dead_votes) best = std::max(best, w);
  std::vector<sim::ComponentRef> refined;
  for (const auto& c : voted) {
    if (c.kind != sim::ComponentKind::kPhysicalLink) continue;
    const auto it = dead_votes.find(c.index);
    if (it != dead_votes.end() && it->second == best) refined.push_back(c);
  }
  if (!refined.empty()) out.culprits = std::move(refined);
  else out.culprits = std::move(voted);
  return out;
}

std::vector<sim::ComponentRef> Localizer::refine_with_traceroute(
    const std::vector<EndpointPair>& pairs,
    std::vector<sim::ComponentRef> voted, SimTime at) const {
  return refine_with_traceroute_ex(pairs, std::move(voted), at).culprits;
}

OverlayVerdict Localizer::overlay_reachability(Endpoint src,
                                               Endpoint dst) const {
  OverlayVerdict v;
  if (!overlay_.attached(src) || !overlay_.attached(dst)) {
    // Endpoint gone entirely: the container-side chain is missing.
    v.failure_point =
        overlay_.attached(src) ? overlay_.chain_of(src).netns : VPortId{};
    return v;
  }
  const VPortId goal = overlay_.chain_of(dst).netns;
  VPortId current = overlay_.chain_of(src).netns;
  std::unordered_set<VPortId> visited{current};
  for (std::size_t step = 0; step < 64; ++step) {
    const auto next = overlay_.next_hop(src, dst, current);
    if (!next) {
      v.failure_point = current;  // broken chain at `current`
      return v;
    }
    if (*next == goal) {
      v.reachable = true;
      return v;
    }
    if (visited.contains(*next)) {
      v.loop = true;
      v.failure_point = *next;
      return v;
    }
    visited.insert(*next);
    current = *next;
  }
  v.failure_point = current;
  return v;
}

sim::ComponentRef Localizer::component_of_overlay_node(VPortId node,
                                                       bool loop) const {
  if (!node.valid()) {
    return {sim::ComponentKind::kContainer, 0};
  }
  const auto& n = overlay_.node(node);
  switch (n.kind) {
    case overlay::NodeKind::kContainerNs:
    case overlay::NodeKind::kVeth:
      // A broken container-side chain means the container runtime tore the
      // interface down (crash); a loop there is still an OVS rule problem.
      if (!loop) return {sim::ComponentKind::kContainer, n.container.value()};
      [[fallthrough]];
    case overlay::NodeKind::kOvsPort:
    case overlay::NodeKind::kVxlanTunnel:
      return {sim::ComponentKind::kVSwitch, n.host.value()};
    case overlay::NodeKind::kRnicVf:
      return {sim::ComponentKind::kRnic, n.rnic.value()};
  }
  return {sim::ComponentKind::kVSwitch, n.host.value()};
}

namespace {

void collect_components(const topo::Path& path,
                        std::set<sim::ComponentRef>& out) {
  for (LinkId l : path.links) {
    out.insert({sim::ComponentKind::kPhysicalLink, l.value()});
  }
  for (SwitchId s : path.switches) {
    out.insert({sim::ComponentKind::kPhysicalSwitch, s.value()});
  }
}

}  // namespace

std::map<sim::ComponentRef, Localizer::PathTally> Localizer::tally_paths(
    const std::vector<EndpointPair>& pairs,
    std::span<const PathScopedAnomaly> path_hints) const {
  // Hinted equal-cost members per pair (a pair may be hinted on several).
  std::map<EndpointPair, std::vector<std::uint32_t>> hinted;
  for (const auto& h : path_hints) hinted[h.pair].push_back(h.path_id);

  std::map<sim::ComponentRef, PathTally> tally;
  for (const auto& p : pairs) {
    // Per-pair component sets — each component counts once per pair even
    // when both probe directions were flagged or several hinted members
    // share it.
    std::set<sim::ComponentRef> fwd;
    std::set<sim::ComponentRef> rev;
    const auto hint = hinted.find(p);
    if (hint != hinted.end()) {
      // Path-scoped evidence: the anomaly names the member(s) it rode, so
      // the pair votes only there — under spray the static selection may
      // never have carried the anomalous probes at all.
      const std::uint32_t n = topo_.num_paths(p.src.rnic, p.dst.rnic);
      for (std::uint32_t m : hint->second) {
        if (m >= n) continue;  // stale hint (topology shrank): no vote
        collect_components(topo_.route_via(p.src.rnic, p.dst.rnic, m), fwd);
      }
      for (const auto& c : fwd) {
        PathTally& t = tally[c];
        t.weight += 1.0;
        ++t.touched;
        ++t.path;
      }
      continue;
    }
    collect_components(topo_.route(p.src.rnic, p.dst.rnic), fwd);
    // The pair's return traffic rides route(dst, src), which static ECMP
    // may hash onto a different spine — a fault there degrades the pair's
    // RTT/loss just the same. Reverse-only components join the candidate
    // set at half weight (the forward direction was observed; the reverse
    // is inferred), max-merged so a component on both directions stays at
    // one pair's worth of evidence.
    collect_components(topo_.route(p.dst.rnic, p.src.rnic), rev);
    for (const auto& c : fwd) {
      PathTally& t = tally[c];
      t.weight += 1.0;
      ++t.touched;
      ++t.fwd;
    }
    for (const auto& c : rev) {
      PathTally& t = tally[c];
      ++t.rev;
      if (!fwd.contains(c)) {
        t.weight += 0.5;
        ++t.touched;
      }
    }
  }
  return tally;
}

std::vector<sim::ComponentRef> Localizer::physical_intersection(
    const std::vector<EndpointPair>& pairs) const {
  return physical_intersection(pairs, {});
}

std::vector<sim::ComponentRef> Localizer::physical_intersection(
    const std::vector<EndpointPair>& pairs,
    std::span<const PathScopedAnomaly> path_hints) const {
  const auto tally = tally_paths(pairs, path_hints);
  double best = 0.0;
  for (const auto& [c, t] : tally) best = std::max(best, t.weight);
  // One pair's worth of evidence is just "the pair's own path" — the
  // strictly-greater floor replaces the old count >= 2 rule and keeps
  // single-pair cases falling through to the later steps. (A reverse-only
  // component needs two pairs' reverse routes, 0.5 + 0.5, to cross it —
  // the bugfix for return-route faults that used to be invisible here.)
  if (best <= 1.0) return {};  // no intersection evidence (Algorithm 1)

  // Among max-weight components prefer links over switches: a faulty link
  // inflates its two endpoint switches to the same weight, and the link is
  // the more specific verdict. A genuinely faulty switch accumulates more
  // pairs than any single one of its links. Coverage floor: a genuinely
  // faulty physical component sits on (nearly) every anomalous path — when
  // even the best component touches only a minority of the pairs, the
  // anomaly is not path-shaped (host-scope faults fan out over all rails
  // and split the vote across ToRs); report no underlay verdict and let
  // the endpoint-pattern step classify it.
  std::vector<sim::ComponentRef> links;
  std::vector<sim::ComponentRef> switches;
  for (const auto& [c, t] : tally) {
    if (t.weight != best) continue;
    if (t.touched < 2 ||
        static_cast<double>(t.touched) <
            0.7 * static_cast<double>(pairs.size())) {
      continue;
    }
    (c.kind == sim::ComponentKind::kPhysicalLink ? links : switches)
        .push_back(c);
  }
  return links.empty() ? switches : links;
}

std::vector<LocalizationVote> Localizer::physical_intersection_votes(
    const std::vector<EndpointPair>& pairs) const {
  return physical_intersection_votes(pairs, {});
}

std::vector<LocalizationVote> Localizer::physical_intersection_votes(
    const std::vector<EndpointPair>& pairs,
    std::span<const PathScopedAnomaly> path_hints) const {
  const auto tally = tally_paths(pairs, path_hints);
  std::vector<LocalizationVote> votes;
  // A count of one is just "the pair's own path", not intersection
  // evidence — the same floor physical_intersection applies. Grouped by
  // source, ComponentRef order within each group; the "intersection" block
  // is byte-identical to the pre-path-diversity record.
  for (const auto& [c, t] : tally) {
    if (t.fwd < 2) continue;
    votes.push_back(LocalizationVote{c, static_cast<double>(t.fwd),
                                     "intersection"});
  }
  for (const auto& [c, t] : tally) {
    if (t.rev < 2) continue;
    votes.push_back(LocalizationVote{c, 0.5 * static_cast<double>(t.rev),
                                     "reverse-path"});
  }
  for (const auto& [c, t] : tally) {
    if (t.path < 2) continue;
    votes.push_back(LocalizationVote{c, static_cast<double>(t.path),
                                     "path"});
  }
  return votes;
}

std::vector<sim::ComponentRef> Localizer::validate_rnics(
    const std::vector<EndpointPair>& pairs) const {
  std::set<RnicId> rnics;
  for (const auto& p : pairs) {
    rnics.insert(p.src.rnic);
    rnics.insert(p.dst.rnic);
  }
  std::vector<sim::ComponentRef> out;
  for (RnicId r : rnics) {
    if (!overlay_.offload_inconsistencies(r).empty()) {
      out.push_back({sim::ComponentKind::kRnic, r.value()});
    }
  }
  return out;
}

Localization Localizer::endpoint_pattern(
    const std::vector<EndpointPair>& pairs, SimTime at) {
  Localization loc;
  loc.method = LocalizationMethod::kEndpointPattern;

  // Collect the endpoints and hosts involved.
  std::map<Endpoint, std::size_t> endpoint_count;
  for (const auto& p : pairs) {
    ++endpoint_count[p.src];
    ++endpoint_count[p.dst];
  }
  // An endpoint present in every anomalous pair is the prime suspect.
  std::vector<Endpoint> shared;
  for (const auto& [ep, n] : endpoint_count) {
    if (n == pairs.size()) shared.push_back(ep);
  }
  if (shared.size() == 1) {
    const Endpoint& ep = shared.front();
    const HostId host = topo_.host_of(ep.rnic);
    // Host-scope signals outrank the RNIC when confirmed.
    if (oracle_.confirms({sim::ComponentKind::kVSwitch, host.value()}, at)) {
      loc.culprits.push_back({sim::ComponentKind::kVSwitch, host.value()});
      return loc;
    }
    if (oracle_.confirms({sim::ComponentKind::kHost, host.value()}, at)) {
      loc.culprits.push_back({sim::ComponentKind::kHost, host.value()});
      return loc;
    }
    if (oracle_.confirms({sim::ComponentKind::kContainer,
                          ep.container.value()}, at)) {
      loc.culprits.push_back(
          {sim::ComponentKind::kContainer, ep.container.value()});
      return loc;
    }
    loc.culprits.push_back({sim::ComponentKind::kRnic, ep.rnic.value()});
    return loc;
  }
  if (shared.size() == 2) {
    // Degenerate single-pair case: one (possibly bidirectional) anomalous
    // pair makes both endpoints appear in every pair, so neither recurrence
    // counting (recur_floor of 3 can never be met) nor intersection can
    // separate them. Ask config/log inspection about each endpoint in the
    // same host-scope-first priority as the single-endpoint branch; with no
    // confirmation, report both RNICs as a tied verdict rather than
    // dropping the case as unlocalized.
    for (const Endpoint& ep : shared) {
      const HostId host = topo_.host_of(ep.rnic);
      if (oracle_.confirms({sim::ComponentKind::kVSwitch, host.value()}, at)) {
        loc.culprits.push_back({sim::ComponentKind::kVSwitch, host.value()});
        return loc;
      }
    }
    for (const Endpoint& ep : shared) {
      const HostId host = topo_.host_of(ep.rnic);
      if (oracle_.confirms({sim::ComponentKind::kHost, host.value()}, at)) {
        loc.culprits.push_back({sim::ComponentKind::kHost, host.value()});
        return loc;
      }
    }
    for (const Endpoint& ep : shared) {
      if (oracle_.confirms({sim::ComponentKind::kContainer,
                            ep.container.value()}, at)) {
        loc.culprits.push_back(
            {sim::ComponentKind::kContainer, ep.container.value()});
        return loc;
      }
    }
    for (const Endpoint& ep : shared) {
      if (oracle_.confirms({sim::ComponentKind::kRnic, ep.rnic.value()}, at)) {
        loc.culprits.push_back({sim::ComponentKind::kRnic, ep.rnic.value()});
        return loc;
      }
    }
    for (const Endpoint& ep : shared) {
      loc.culprits.push_back({sim::ComponentKind::kRnic, ep.rnic.value()});
    }
    return loc;
  }
  // Multiple endpoints of one host across rails: host-scope problem. Only
  // *recurring* endpoints vote — a healthy peer appears in just the one or
  // two (bidirectional) pairs that cross the faulty host, while the faulty
  // host's endpoints recur across all their peers.
  std::size_t max_recur = 0;
  for (const auto& [ep, n] : endpoint_count) {
    max_recur = std::max(max_recur, n);
  }
  const std::size_t recur_floor = std::max<std::size_t>(3, max_recur / 2);
  std::set<HostId> hosts;
  std::set<std::uint32_t> rails;
  for (const auto& [ep, n] : endpoint_count) {
    if (n < recur_floor) continue;
    hosts.insert(topo_.host_of(ep.rnic));
    rails.insert(topo_.rail_of(ep.rnic));
  }
  if (!hosts.empty() && hosts.size() <= 2 && rails.size() >= 2) {
    // Pick the host whose endpoints recur most.
    std::map<HostId, std::size_t> host_votes;
    for (const auto& [ep, n] : endpoint_count) {
      if (n >= recur_floor) host_votes[topo_.host_of(ep.rnic)] += n;
    }
    const auto best = std::max_element(
        host_votes.begin(), host_votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const HostId host = best->first;
    if (oracle_.confirms({sim::ComponentKind::kVSwitch, host.value()}, at)) {
      loc.culprits.push_back({sim::ComponentKind::kVSwitch, host.value()});
    } else {
      loc.culprits.push_back({sim::ComponentKind::kHost, host.value()});
    }
    return loc;
  }
  loc.method = LocalizationMethod::kUnlocalized;
  return loc;
}

Localization Localizer::localize(
    const std::vector<EndpointPair>& anomalous_pairs, SimTime at) {
  return localize(anomalous_pairs, at, {});
}

Localization Localizer::localize(
    const std::vector<EndpointPair>& anomalous_pairs, SimTime at,
    std::span<const PathScopedAnomaly> path_hints) {
  Localization loc = localize_impl(anomalous_pairs, at, path_hints);
  // Steps with no intermediate tally (overlay, RNIC validation, endpoint
  // pattern) still expose their verdict as unit-weight votes, so the
  // forensic vote record is never empty for a localized case.
  if (loc.votes.empty() && !loc.culprits.empty()) {
    for (const auto& c : loc.culprits) {
      loc.votes.push_back(
          LocalizationVote{c, 1.0, to_string(loc.method).data()});
    }
  }
  for (const auto& v : loc.votes) {
    if (std::string_view(v.source) == "path") m_path_votes_.inc();
  }
  m_calls_.inc();
  m_method_[static_cast<std::size_t>(loc.method)].inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("localize", to_string(loc.method).data(), at,
                         loc.culprits.size(), anomalous_pairs.size());
  }
  return loc;
}

Localization Localizer::localize_impl(
    const std::vector<EndpointPair>& anomalous_pairs, SimTime at,
    std::span<const PathScopedAnomaly> path_hints) {
  Localization loc;
  if (anomalous_pairs.empty()) return loc;

  // Step 1: overlay logical reachability per pair. A torn-down endpoint
  // chain (container gone while peers still probe it) indicts that
  // container directly; otherwise the forwarding-chain replay names the
  // broken component.
  std::set<sim::ComponentRef> overlay_culprits;
  for (const auto& p : anomalous_pairs) {
    if (!overlay_.attached(p.dst)) {
      overlay_culprits.insert(
          {sim::ComponentKind::kContainer, p.dst.container.value()});
      continue;
    }
    if (!overlay_.attached(p.src)) {
      overlay_culprits.insert(
          {sim::ComponentKind::kContainer, p.src.container.value()});
      continue;
    }
    const auto v = overlay_reachability(p.src, p.dst);
    if (!v.reachable) {
      overlay_culprits.insert(
          component_of_overlay_node(v.failure_point, v.loop));
    }
  }
  if (!overlay_culprits.empty()) {
    loc.method = LocalizationMethod::kOverlayReachability;
    loc.culprits.assign(overlay_culprits.begin(), overlay_culprits.end());
    return loc;
  }

  // Step 2: underlay physical intersection, refined by host-agent
  // traceroutes when several links tie.
  auto refined = refine_with_traceroute_ex(
      anomalous_pairs, physical_intersection(anomalous_pairs, path_hints),
      at);
  loc.votes = physical_intersection_votes(anomalous_pairs, path_hints);
  loc.votes.insert(loc.votes.end(), refined.votes.begin(),
                   refined.votes.end());
  if (obs_ != nullptr) {
    obs_->tracer.instant("localize", "vote.physical", at,
                         refined.culprits.size(), anomalous_pairs.size());
  }
  if (refined.ran && refined.coverage < cfg_.min_traceroute_coverage) {
    // The refinement pass was nearly blind: whatever the vote said rests on
    // too few observed hops to indict hardware. Demote rather than point at
    // a component the evidence cannot support — but only below the
    // threshold; partial coverage above it still localizes (with the
    // reduced confidence recorded on the verdict).
    loc.method = LocalizationMethod::kUnlocalized;
    loc.confidence = refined.coverage;
    return loc;
  }
  auto& voted = refined.culprits;
  if (!voted.empty()) {
    // Uplink verdicts are observationally equivalent to the RNIC behind the
    // port; only keep the link when switch logs confirm it.
    std::vector<sim::ComponentRef> confirmed;
    for (const auto& c : voted) {
      if (c.kind == sim::ComponentKind::kPhysicalLink) {
        const auto& link = topo_.link_at(LinkId{c.index});
        if (link.tier == topo::LinkTier::kHostToTor &&
            !oracle_.confirms(c, at)) {
          // Re-attribute to the RNIC (validated next) rather than the fiber.
          continue;
        }
      }
      confirmed.push_back(c);
    }
    if (!confirmed.empty()) {
      loc.method = LocalizationMethod::kPhysicalIntersection;
      loc.culprits = std::move(confirmed);
      if (refined.ran) loc.confidence = refined.coverage;
      return loc;
    }
  }

  // Step 3: RNIC flow-table validation.
  auto rnics = validate_rnics(anomalous_pairs);
  if (!rnics.empty()) {
    loc.method = LocalizationMethod::kRnicValidation;
    for (const auto& c : rnics) {
      loc.votes.push_back(LocalizationVote{c, 1.0, "rnic-validation"});
    }
    loc.culprits = std::move(rnics);
    return loc;
  }

  // Step 4: endpoint-pattern classification with config inspection.
  return endpoint_pattern(anomalous_pairs, at);
}

}  // namespace skh::core
