// Three-phase ping-list generation (§5.1) plus the deTector-style
// topology-aware baseline used in Figure 15.
//
//   Preload:       rail-pruned basic list generated at task submission,
//                  before any container exists (8x reduction on 8-rail
//                  hosts).
//   Initialization: the basic list ships to agents inactive; targets only
//                  activate on peer registration (handled by probe::Agent).
//   Runtime:       once an inferred traffic skeleton is available, the list
//                  shrinks to the skeleton pairs (>95% below full mesh).
#pragma once

#include <functional>
#include <vector>

#include "common/ids.h"
#include "probe/probe_types.h"
#include "topo/topology.h"

namespace skh::core {

/// Returns an endpoint's RNIC rank within its container (the "rail" used
/// for pruning — §5.1: "the same rank of the RNICs among different hosts").
using RankFn = std::function<std::uint32_t(const Endpoint&)>;

/// Preload phase: the basic ping list (directed pairs, same-rank only).
[[nodiscard]] std::vector<EndpointPair> basic_ping_list(
    const std::vector<Endpoint>& endpoints, const RankFn& rank_of);

/// Runtime phase: expand the (unordered) skeleton pairs into the directed
/// probing matrix — each unordered pair is probed from both sides, matching
/// the production deployment where both agents own the measurement. Each
/// directed pair appears exactly once even if the input already contains
/// both orientations or duplicates.
[[nodiscard]] std::vector<EndpointPair> skeleton_ping_list(
    const std::vector<EndpointPair>& skeleton_pairs);

/// deTector-style baseline: topology-aware but workload-unaware probing.
/// deTector prunes the full mesh using only data-center topology structure
/// — the paper reports it still needing 15K+ probes per round at 2048 RNICs
/// (~1/4 of the full mesh) because it cannot see the training workload's
/// traffic sparsity. We emulate that reduction faithfully: all same-rank
/// pairs (topology-redundant rails eliminated) plus a deterministic-hash
/// sample of cross-rank pairs sized so the total is ~full_mesh/4.
[[nodiscard]] std::vector<EndpointPair> detector_baseline_list(
    const std::vector<Endpoint>& endpoints, const topo::Topology& topo);

/// Greedy link-coverage probe selection: picks same-task pairs until every
/// physical link used by the task is covered `min_cover` times (the
/// building block of tomography-grade probing plans; exposed for tests and
/// the ablations).
[[nodiscard]] std::vector<EndpointPair> link_cover_list(
    const std::vector<Endpoint>& endpoints, const topo::Topology& topo,
    std::size_t min_cover = 3);

/// Probing-scale accounting for Figure 15: probes per round under each
/// strategy for one task.
struct ProbingScale {
  std::size_t full_mesh = 0;
  std::size_t detector = 0;
  std::size_t basic = 0;
  std::size_t skeleton = 0;
};

[[nodiscard]] ProbingScale probing_scale(
    const std::vector<Endpoint>& endpoints, const RankFn& rank_of,
    const topo::Topology& topo,
    const std::vector<EndpointPair>& skeleton_pairs);

/// Max directed targets held by any single container's agent under a given
/// pair list — the serialized-loop length behind the Figure 16 round-time
/// model.
[[nodiscard]] std::size_t max_targets_per_agent(
    const std::vector<EndpointPair>& pairs);

}  // namespace skh::core
