// Campaign scoring: precision / recall / localization accuracy (§7.1).
//
// The fault injector is the ground truth. A failure case matches an
// injected fault when the fault was active in the case's time window and
// the fault's component could degrade at least one of the case's flagged
// pairs. Localization is correct when the case's culprit set contains the
// fault's target (or the observationally-equivalent uplink <-> RNIC
// aliasing resolved the right physical port).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/skeleton_hunter.h"
#include "sim/fault.h"
#include "topo/topology.h"

namespace skh::core {

/// Does this fault's target lie on the probe surface of `pair`?
[[nodiscard]] bool fault_affects_pair(const sim::Fault& fault,
                                      const EndpointPair& pair,
                                      const topo::Topology& topo);

struct CampaignScore {
  std::size_t injected_visible = 0;  ///< probe-visible injected faults
  std::size_t injected_invisible = 0;  ///< intra-host faults (§7.3)
  std::size_t detected_true = 0;    ///< faults matched by >= 1 case
  std::size_t cases_total = 0;
  std::size_t cases_true = 0;       ///< cases matching some fault
  std::size_t cases_false = 0;      ///< false positives
  std::size_t localized_correct = 0;  ///< matched cases naming the target
  std::size_t localized_total = 0;    ///< matched cases with any verdict
  /// kTenantVisibleNetworkSilent cases (collective signal plane). Scored
  /// separately: they carry no anomalous probe pairs and report host-side
  /// incidents the network ground truth does not model, so counting them
  /// against probe precision would brand every correct silent-hang ticket
  /// a false positive.
  std::size_t cases_network_silent = 0;
  double mean_detection_latency_s = 0.0;  ///< fault start -> first event

  /// Precision over failure cases (§7.1: 98.2% in production).
  [[nodiscard]] double precision() const;
  /// Recall over probe-visible *and* invisible faults, matching the paper's
  /// user-feedback-based recall (intra-host faults are the false negatives).
  [[nodiscard]] double recall() const;
  /// Localization accuracy over matched cases (§7.1: 95.7%).
  [[nodiscard]] double localization_accuracy() const;

  /// Bit-exact equality: the runner's thread-count-invariance guarantee is
  /// asserted field by field, doubles included.
  friend bool operator==(const CampaignScore&,
                         const CampaignScore&) = default;
};

struct ScoreConfig {
  /// Slack after fault end during which detections still count (analysis
  /// windows close after the fault clears).
  SimTime match_slack = SimTime::minutes(35);
};

[[nodiscard]] CampaignScore score_campaign(
    const std::vector<FailureCase>& cases, const sim::FaultInjector& faults,
    const topo::Topology& topo, const ScoreConfig& cfg = {});

/// Sample statistics of one metric across a Monte-Carlo campaign set.
/// The 95% interval is the normal approximation mean ± 1.96·stddev/√n —
/// adequate for the tens-of-seeds sweeps the benches run.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;

  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double ci95_lo() const { return mean - ci95_halfwidth(); }
  [[nodiscard]] double ci95_hi() const { return mean + ci95_halfwidth(); }
};

/// Aggregate of per-seed CampaignScores: the precision/recall curves of
/// §7.1 with uncertainty, instead of one anecdotal run.
struct ScoreSummary {
  std::size_t runs = 0;
  MetricSummary precision;
  MetricSummary recall;
  MetricSummary localization_accuracy;
  MetricSummary detection_latency_s;
  // Pooled raw counts over all runs.
  std::size_t total_cases = 0;
  std::size_t total_cases_false = 0;
  std::size_t total_injected_visible = 0;
  std::size_t total_injected_invisible = 0;
  std::size_t total_detected = 0;
};

/// Summarize a set of per-seed campaign scores. Latency is averaged only
/// over runs that detected at least one fault.
[[nodiscard]] ScoreSummary summarize_scores(
    std::span<const CampaignScore> scores);

/// Pool per-campaign detector ingest counters (e.g. one per `run_many`
/// seed) into fleet totals for throughput/observability reporting.
[[nodiscard]] DetectorCounters merge_counters(
    std::span<const DetectorCounters> counters);

/// Fraction of streaming LOF scores answered from the cached model without
/// a repair pass; 1.0 when no LOF scoring happened.
[[nodiscard]] double lof_fast_path_ratio(const DetectorCounters& c);

}  // namespace skh::core
