#include "core/harness.h"

#include <stdexcept>

namespace skh::core {

Experiment::Experiment(const ExperimentConfig& cfg)
    : rng_(cfg.seed),
      topo_(topo::Topology::build(cfg.topology)),
      obs_(cfg.obs),
      orch_(topo_, overlay_, events_, rng_.fork("orchestrator")),
      hunter_(topo_, overlay_, orch_, events_, faults_,
              rng_.fork("hunter"), cfg.hunter) {
  if (cfg.obs.metrics) {
    orch_.attach_obs(&obs_);
    hunter_.attach_obs(&obs_);
  }
}

std::optional<TaskId> Experiment::launch_task(const cluster::TaskRequest& req) {
  const auto task = orch_.submit_task(req);
  if (task) hunter_.monitor_task(*task);
  return task;
}

void Experiment::run_to_running(TaskId task, SimTime max_wait) {
  const SimTime deadline = events_.now() + max_wait;
  while (events_.now() < deadline) {
    const auto& info = orch_.task(task);
    bool all_running = true;
    for (ContainerId cid : info.containers) {
      if (orch_.container(cid).state != cluster::ContainerState::kRunning) {
        all_running = false;
        break;
      }
    }
    if (all_running) return;
    if (!events_.step()) break;
  }
}

workload::TaskLayout Experiment::layout_of(
    TaskId task, std::optional<workload::ParallelismConfig> par) const {
  const auto& info = orch_.task(task);
  std::vector<cluster::ContainerInfo> containers;
  containers.reserve(info.containers.size());
  for (ContainerId cid : info.containers) {
    containers.push_back(orch_.container(cid));
  }
  const auto cfg = par.value_or(workload::default_parallelism(
      info.total_gpus(), info.request.gpus_per_container));
  return workload::make_layout(info, containers, cfg);
}

std::vector<EndpointObservation> Experiment::observations_for(
    const workload::TaskLayout& layout,
    const workload::BurstConfig& bcfg) const {
  RngStream rng = rng_.fork("burst-series").fork(layout.task.value());
  const auto series = workload::burst_series_for_layout(layout, bcfg, rng);
  std::vector<EndpointObservation> obs;
  obs.reserve(layout.roles.size());
  for (std::size_t i = 0; i < layout.roles.size(); ++i) {
    EndpointObservation o;
    o.endpoint = layout.roles[i].endpoint;
    o.host = topo_.host_of(o.endpoint.rnic).value();
    o.container_index = orch_.container(o.endpoint.container).index_in_task;
    o.rnic_rank = rank_of(o.endpoint);
    o.throughput = series[i];
    obs.push_back(std::move(o));
  }
  return obs;
}

std::optional<InferredSkeleton> Experiment::apply_skeleton(
    TaskId task, const workload::TaskLayout& layout,
    const workload::BurstConfig& bcfg) {
  return hunter_.supply_observations(task, observations_for(layout, bcfg));
}

void Experiment::schedule_churn(TaskId task,
                                const std::vector<sim::ChurnEvent>& plan) {
  const auto& info = orch_.task(task);
  for (const sim::ChurnEvent& ev : plan) {
    if (ev.container_index >= info.containers.size()) continue;
    const ContainerId victim = info.containers[ev.container_index];
    switch (ev.kind) {
      case sim::ChurnKind::kRestart:
        events_.schedule_at(ev.at,
                            [this, victim] { orch_.restart_container(victim); });
        break;
      case sim::ChurnKind::kMigrate:
        events_.schedule_at(ev.at,
                            [this, victim] { orch_.migrate_container(victim); });
        break;
      case sim::ChurnKind::kCrash:
        events_.schedule_at(ev.at,
                            [this, victim] { orch_.crash_container(victim); });
        break;
      case sim::ChurnKind::kAgentDeath:
        // The sidecar dies but the tenant keeps training: probes through the
        // victim fail (a monitoring defect, ground_truth = false) while the
        // container itself never deregisters.
        faults_.inject_phantom(
            {sim::ComponentKind::kContainer, victim.value()}, ev.at,
            ev.at + ev.duration);
        break;
    }
  }
}

std::uint32_t Experiment::rank_of(const Endpoint& ep) const {
  const auto& ci = orch_.container(ep.container);
  for (std::uint32_t r = 0; r < ci.rnics.size(); ++r) {
    if (ci.rnics[r] == ep.rnic) return r;
  }
  throw std::invalid_argument("Experiment::rank_of: endpoint not in task");
}

}  // namespace skh::core
