#include "core/harness.h"

#include <stdexcept>

namespace skh::core {

Experiment::Experiment(const ExperimentConfig& cfg)
    : rng_(cfg.seed),
      topo_(topo::Topology::build(cfg.topology)),
      obs_(cfg.obs),
      orch_(topo_, overlay_, events_, rng_.fork("orchestrator")),
      hunter_(topo_, overlay_, orch_, events_, faults_,
              rng_.fork("hunter"), cfg.hunter) {
  if (cfg.obs.metrics) {
    orch_.attach_obs(&obs_);
    hunter_.attach_obs(&obs_);
  }
}

std::optional<TaskId> Experiment::launch_task(const cluster::TaskRequest& req) {
  const auto task = orch_.submit_task(req);
  if (task) hunter_.monitor_task(*task);
  return task;
}

void Experiment::run_to_running(TaskId task, SimTime max_wait) {
  const SimTime deadline = events_.now() + max_wait;
  while (events_.now() < deadline) {
    const auto& info = orch_.task(task);
    bool all_running = true;
    for (ContainerId cid : info.containers) {
      if (orch_.container(cid).state != cluster::ContainerState::kRunning) {
        all_running = false;
        break;
      }
    }
    if (all_running) return;
    if (!events_.step()) break;
  }
}

workload::TaskLayout Experiment::layout_of(
    TaskId task, std::optional<workload::ParallelismConfig> par) const {
  const auto& info = orch_.task(task);
  std::vector<cluster::ContainerInfo> containers;
  containers.reserve(info.containers.size());
  for (ContainerId cid : info.containers) {
    containers.push_back(orch_.container(cid));
  }
  const auto cfg = par.value_or(workload::default_parallelism(
      info.total_gpus(), info.request.gpus_per_container));
  return workload::make_layout(info, containers, cfg);
}

std::vector<EndpointObservation> Experiment::observations_for(
    const workload::TaskLayout& layout,
    const workload::BurstConfig& bcfg) const {
  RngStream rng = rng_.fork("burst-series").fork(layout.task.value());
  const auto series = workload::burst_series_for_layout(layout, bcfg, rng);
  std::vector<EndpointObservation> obs;
  obs.reserve(layout.roles.size());
  for (std::size_t i = 0; i < layout.roles.size(); ++i) {
    EndpointObservation o;
    o.endpoint = layout.roles[i].endpoint;
    o.host = topo_.host_of(o.endpoint.rnic).value();
    o.container_index = orch_.container(o.endpoint.container).index_in_task;
    o.rnic_rank = rank_of(o.endpoint);
    o.throughput = series[i];
    obs.push_back(std::move(o));
  }
  return obs;
}

std::optional<InferredSkeleton> Experiment::apply_skeleton(
    TaskId task, const workload::TaskLayout& layout,
    const workload::BurstConfig& bcfg) {
  return hunter_.supply_observations(task, observations_for(layout, bcfg));
}

void Experiment::schedule_churn(TaskId task,
                                const std::vector<sim::ChurnEvent>& plan) {
  const auto& info = orch_.task(task);
  for (const sim::ChurnEvent& ev : plan) {
    if (ev.container_index >= info.containers.size()) continue;
    const ContainerId victim = info.containers[ev.container_index];
    switch (ev.kind) {
      case sim::ChurnKind::kRestart:
        events_.schedule_at(ev.at,
                            [this, victim] { orch_.restart_container(victim); });
        break;
      case sim::ChurnKind::kMigrate:
        events_.schedule_at(ev.at,
                            [this, victim] { orch_.migrate_container(victim); });
        break;
      case sim::ChurnKind::kCrash:
        events_.schedule_at(ev.at,
                            [this, victim] { orch_.crash_container(victim); });
        break;
      case sim::ChurnKind::kAgentDeath:
        // The sidecar dies but the tenant keeps training: probes through the
        // victim fail (a monitoring defect, ground_truth = false) while the
        // container itself never deregisters.
        faults_.inject_phantom(
            {sim::ComponentKind::kContainer, victim.value()}, ev.at,
            ev.at + ev.duration);
        break;
    }
  }
}

void Experiment::enable_collective_plane(TaskId task,
                                         const workload::TaskLayout& layout,
                                         const sim::CollectiveFaultPlan& plan,
                                         SimTime until,
                                         CollectivePlaneConfig cfg) {
  auto groups = workload::build_collective_groups(layout);
  hunter_.register_collectives(task, groups);
  auto state = std::make_unique<CollectivePlaneState>(CollectivePlaneState{
      workload::CollectiveTraceGenerator(
          std::move(groups), cfg.trace,
          rng_.fork("collective-trace").fork(task.value())),
      task});
  CollectivePlaneState* st = state.get();
  collective_planes_.push_back(std::move(state));
  // Host-side faults by value: the plan is pure data and the plane must
  // not dangle on a caller temporary.
  st->gen.set_host_fault_fn([plan](std::uint32_t ci, SimTime t) {
    workload::CollectiveTraceGenerator::HostEffect e;
    e.hang = plan.hang_at(ci, t);
    e.slowdown = plan.slowdown_at(ci, t);
    return e;
  });
  if (cfg.couple_network) {
    const double retrans = cfg.trace.loss_retransmit_us;
    st->gen.set_network_delay_fn(
        [this, retrans](const Endpoint& ep,
                        SimTime t) -> std::optional<double> {
          const sim::ComponentRef comps[] = {
              {sim::ComponentKind::kRnic, ep.rnic.value()},
              {sim::ComponentKind::kPhysicalLink,
               topo_.uplink_of(ep.rnic).value()},
              {sim::ComponentKind::kHost, topo_.host_of(ep.rnic).value()},
              {sim::ComponentKind::kContainer, ep.container.value()}};
          double extra = 0.0;
          for (const auto& c : comps) {
            for (const sim::Fault* f : faults_.active_on(c, t)) {
              // Phantom (monitoring-defect) faults never couple: the
              // tenant's collectives don't cross the sidecar.
              if (!f->ground_truth || !f->degrading_at(t)) continue;
              if (f->effect.unreachable) return std::nullopt;
              extra += f->effect.extra_latency_us +
                       f->effect.loss_probability * retrans;
            }
          }
          return extra;
        });
  }
  collective_tick(st, until, cfg.iteration_period);
}

void Experiment::collective_tick(CollectivePlaneState* st, SimTime until,
                                 SimTime period) {
  const SimTime now = events_.now();
  // Last tick's batch has aged one full period — stalled steps are past
  // the hang timeout by construction (period > timeout is a config
  // requirement, see CollectivePlaneConfig).
  if (!st->pending.empty()) {
    hunter_.ingest_collective_steps(st->task, st->pending);
  }
  st->pending = st->gen.emit_iteration(st->next_iteration++, now);
  collective_fp_ = workload::fingerprint_records(st->pending, collective_fp_);
  if (now + period <= until) {
    events_.schedule_after(period, [this, st, until, period] {
      collective_tick(st, until, period);
    });
  } else {
    // Final batch still needs one aging period before judgment, else an
    // injected stall in the last iteration would silently vanish.
    events_.schedule_after(period, [this, st] {
      if (!st->pending.empty()) {
        hunter_.ingest_collective_steps(st->task, st->pending);
        st->pending.clear();
      }
    });
  }
}

std::uint32_t Experiment::rank_of(const Endpoint& ep) const {
  const auto& ci = orch_.container(ep.container);
  for (std::uint32_t r = 0; r < ci.rnics.size(); ++r) {
    if (ci.rnics[r] == ep.rnic) return r;
  }
  throw std::invalid_argument("Experiment::rank_of: endpoint not in task");
}

}  // namespace skh::core
