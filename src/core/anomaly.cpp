#include "core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

namespace skh::core {

void canonicalize_events(std::vector<AnomalyEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const AnomalyEvent& a, const AnomalyEvent& b) {
              if (a.detected_at != b.detected_at) {
                return a.detected_at < b.detected_at;
              }
              if (a.pair != b.pair) return a.pair < b.pair;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.path_id != b.path_id) return a.path_id < b.path_id;
              return a.score < b.score;
            });
}

std::string_view to_string(AnomalyKind k) noexcept {
  switch (k) {
    case AnomalyKind::kUnreachable: return "unreachable";
    case AnomalyKind::kPacketLoss: return "packet-loss";
    case AnomalyKind::kLatencyShortTerm: return "latency-short-term";
    case AnomalyKind::kLatencyLongTerm: return "latency-long-term";
  }
  return "unknown";
}

namespace {

/// Start of the window (on the nominal grid anchored at `boundary`) that
/// contains `t`. A probe gap spanning several windows skips the sample-less
/// windows entirely instead of dragging every later boundary to the late
/// sample.
SimTime aligned_restart(SimTime boundary, SimTime t, SimTime window) {
  const std::int64_t w = window.raw_nanos();
  if (w <= 0) return t;
  const std::int64_t missed = (t - boundary).raw_nanos() / w;
  return SimTime::nanos(boundary.raw_nanos() + missed * w);
}

/// Window summary over pre-sorted samples, with the robust-scale clamp
/// applied to the moment coordinates (mean/std/max): samples above
/// p75 + max(iqr_mult * IQR, band_frac * p50) are winsorized to that cap.
/// Percentiles are order statistics of the window body and stay raw. With
/// iqr_mult == 0 (or no sample above the cap) this reproduces
/// WindowAccumulator::summary()'s sorted-order moments exactly; both
/// detector paths route through it, so their feature vectors agree
/// bit-for-bit.
WindowSummary robust_summary(std::span<const double> sorted, double iqr_mult,
                             double band_frac) {
  WindowSummary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  s.min = sorted.front();
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  double cap = std::numeric_limits<double>::infinity();
  if (iqr_mult > 0.0) {
    cap = s.p75 +
          std::max(iqr_mult * (s.p75 - s.p25), band_frac * s.p50);
  }
  double sum = 0.0;
  for (const double v : sorted) sum += std::min(v, cap);
  s.mean = sum / static_cast<double>(sorted.size());
  if (sorted.size() >= 2) {
    double s2 = 0.0;
    for (const double v : sorted) {
      const double d = std::min(v, cap) - s.mean;
      s2 += d * d;
    }
    s.stddev = std::sqrt(s2 / static_cast<double>(sorted.size() - 1));
  }
  s.max = std::min(sorted.back(), cap);
  return s;
}

}  // namespace

AnomalyDetector::AnomalyDetector(DetectorConfig cfg)
    : cfg_(cfg),
      stride_(static_cast<std::uint32_t>(
          std::max<std::size_t>(1, cfg.window_sample_capacity))),
      index_(common::FlatTableConfig{cfg.expected_pairs,
                                     cfg.pair_table_fullness}),
      // One slot of slack beyond the live maximum (lookback + 1 entries):
      // within a close the new median is inserted before the oldest is
      // evicted. Stride rounds both regions together up to whole lines.
      p50_cap_(static_cast<std::uint32_t>(cfg.lookback_windows + 2)),
      p50_stride_((2 * p50_cap_ + 7) & ~7U),
      own_registry_(std::make_unique<obs::MetricsRegistry>()) {
  if (cfg_.expected_pairs > 0) {
    hot_.reserve(cfg_.expected_pairs);
    cold_.reserve(cfg_.expected_pairs);
    samples_.reserve(cfg_.expected_pairs * stride_);
    p50_.reserve(cfg_.expected_pairs * p50_stride_);
    if (cfg_.track_paths) paths_.reserve(cfg_.expected_pairs * kPathSlots);
  }
  bind_metrics(*own_registry_);
}

void AnomalyDetector::bind_metrics(obs::MetricsRegistry& r) {
  metrics_ = &r;
  id_probes_ = r.counter_id("detector.probes_ingested");
  id_delivered_ = r.counter_id("detector.samples_delivered");
  id_short_closed_ = r.counter_id("detector.short_windows_closed");
  id_long_closed_ = r.counter_id("detector.long_windows_closed");
  id_gate_skips_ = r.counter_id("detector.lof_gate_skips");
  id_events_ = r.counter_id("detector.events_emitted");
  id_insufficient_ = r.counter_id("detector.windows_insufficient");
  id_dup_rejected_ = r.counter_id("detector.duplicates_rejected");
  id_stale_rejected_ = r.counter_id("detector.stale_rejected");
  m_probes_ = r.bind_counter(id_probes_);
  m_delivered_ = r.bind_counter(id_delivered_);
  m_short_closed_ = r.bind_counter(id_short_closed_);
  m_long_closed_ = r.bind_counter(id_long_closed_);
  m_gate_skips_ = r.bind_counter(id_gate_skips_);
  m_events_ = r.bind_counter(id_events_);
  m_insufficient_ = r.bind_counter(id_insufficient_);
  m_dup_rejected_ = r.bind_counter(id_dup_rejected_);
  m_stale_rejected_ = r.bind_counter(id_stale_rejected_);
}

void AnomalyDetector::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  bind_metrics(ctx != nullptr ? ctx->registry : *own_registry_);
}

AnomalyDetector::PairHandle AnomalyDetector::handle_of(
    const EndpointPair& pair) {
  const auto [id, inserted] = index_.insert(pair);
  if (inserted) {
    if (id >= hot_.size()) {
      // Fresh id: extend the id-indexed arrays. A recycled id reuses its
      // slot, already reset by `recycle` (its p50 strip may hold stale
      // values, but every read is bounded by the fresh LOF model's size).
      hot_.resize(id + 1);
      cold_.resize(id + 1);
      samples_.resize(static_cast<std::size_t>(id + 1) * stride_, 0.0);
      p50_.resize(static_cast<std::size_t>(id + 1) * p50_stride_, 0.0);
      if (cfg_.track_paths) {
        paths_.resize(static_cast<std::size_t>(id + 1) * kPathSlots);
      }
    }
    cold_[id].pair = pair;
  }
  return id;
}

void AnomalyDetector::reserve_pairs(std::size_t pairs) {
  index_.reserve(pairs);
  if (pairs > hot_.capacity()) {
    hot_.reserve(pairs);
    cold_.reserve(pairs);
    samples_.reserve(pairs * stride_);
    p50_.reserve(pairs * p50_stride_);
    if (cfg_.track_paths) paths_.reserve(pairs * kPathSlots);
  }
  // A campaign-end flush closes at most a short and a long window per pair;
  // sizing the window log to that worst case means a drained log never
  // drops, at any fleet scale.
  window_log_cap_ = std::max(window_log_cap_, 2 * pairs);
  if (log_windows_) window_log_.reserve(window_log_cap_);
}

void AnomalyDetector::set_window_logging(bool on) {
  log_windows_ = on;
  if (on) window_log_.reserve(window_log_cap_);
}

void AnomalyDetector::drain_window_log(std::vector<obs::WindowRecord>& out) {
  out.insert(out.end(), window_log_.begin(), window_log_.end());
  window_log_.clear();
}

void AnomalyDetector::log_window(const EndpointPair& pair, SimTime start,
                                 SimTime end, std::uint32_t sent,
                                 std::uint32_t lost, float p50_us, float score,
                                 std::uint32_t flags) {
  if (!log_windows_) return;
  if (window_log_.size() >= window_log_cap_) {
    ++window_log_drops_;
    return;
  }
  obs::WindowRecord rec;
  rec.pair = pair;
  rec.start = start;
  rec.end = end;
  rec.sent = sent;
  rec.lost = lost;
  rec.p50_us = p50_us;
  rec.score = score;
  rec.flags = flags;
  window_log_.push_back(rec);
}

void AnomalyDetector::retire_pair(const EndpointPair& pair) {
  const PairHandle id = index_.find(pair);
  if (id == common::FlatPairTable::kNoSlot) return;
  if (hot_[id].parked) return;
  hot_[id].parked = true;
  parked_.push_back(id);
}

std::size_t AnomalyDetector::retired_count() const noexcept {
  std::size_t n = 0;
  for (const PairHandle id : parked_) n += hot_[id].parked ? 1 : 0;
  return n;
}

std::vector<AnomalyEvent> AnomalyDetector::ingest(const probe::ProbeResult& r) {
  std::vector<AnomalyEvent> events;
  (void)ingest(handle_of(r.pair), r.seq, r.sent_at, r.delivered, r.rtt_us,
               r.path_id, events);
  return events;
}

std::size_t AnomalyDetector::ingest(PairHandle h, std::uint64_t seq,
                                    SimTime sent_at, bool delivered,
                                    double rtt_us, std::uint32_t path_id,
                                    std::vector<AnomalyEvent>& out) {
  const std::size_t before = out.size();
  PairHot& st = hot_[h];
  m_probes_.inc();

  // Gray-telemetry rejection, before any window state is touched: a lying
  // delivery must not close windows, drag the grid, or double-count.
  if (seq != 0) {
    if (seq == st.last_seq && sent_at == st.last_sent) {
      m_dup_rejected_.inc();  // duplicated delivery: counted exactly once
      return 0;
    }
    if (seq < st.last_seq && sent_at <= st.last_sent) {
      m_stale_rejected_.inc();  // reordered straggler from an earlier round
      return 0;
    }
  }
  if (st.short_open && sent_at < st.short_start) {
    // Timestamped before the window it would land in: a skewed clock or a
    // delivery delayed across a close. Window attribution would be wrong
    // whatever we did, so drop it (a legitimate sequence reset after a
    // replan always carries a fresh timestamp and is unaffected).
    m_stale_rejected_.inc();
    return 0;
  }
  if (seq != 0) {
    st.last_seq = seq;
    st.last_sent = sent_at;
  }
  // A straggling result for a churn-retired pair revives it: analysis
  // continues on the retained state exactly as if it was never retired.
  st.parked = false;

  // Window rollover checks happen before the sample is added, so a sample
  // after the boundary closes the previous window first. Closes are stamped
  // at the nominal boundary (start + window), not at the triggering
  // sample's timestamp, and the next window reopens on the nominal grid.
  if (st.short_open) {
    const SimTime boundary = st.short_start + cfg_.short_window;
    if (sent_at >= boundary) {
      close_short_window(h, boundary, out);
      st.short_open = true;
      st.short_start = aligned_restart(boundary, sent_at, cfg_.short_window);
    }
  } else {
    st.short_open = true;
    st.short_start = sent_at;
  }
  if (st.long_open) {
    const SimTime boundary = st.long_start + cfg_.long_window;
    if (sent_at >= boundary) {
      close_long_window(h, boundary, out);
      st.long_open = true;
      st.long_start = aligned_restart(boundary, sent_at, cfg_.long_window);
    }
  } else {
    st.long_open = true;
    st.long_start = sent_at;
  }

  ++st.short_sent;
  if (delivered) {
    m_delivered_.inc();
    if (cfg_.streaming) {
      // Long-window accumulation is folded into the short-window close:
      // the long window is a short-window multiple on the same grid, so
      // every long close is preceded by the short close covering its tail.
      const std::uint32_t c = st.short_count;
      if (c < stride_) {
        samples_[static_cast<std::size_t>(h) * stride_ + c] = rtt_us;
      } else {
        cold_[h].spill.push_back(rtt_us);
      }
      st.short_count = c + 1;
    } else {
      PairCold& cold = cold_[h];
      cold.short_rtts.push_back(rtt_us);
      cold.long_rtts.push_back(rtt_us);
    }
    st.fail_streak = 0;
    st.unreachable_alarmed = false;
  } else {
    ++st.short_lost;
    ++st.fail_streak;
    if (st.fail_streak >= cfg_.unreachable_streak &&
        !st.unreachable_alarmed) {
      st.unreachable_alarmed = true;
      out.push_back(AnomalyEvent{cold_[h].pair, sent_at,
                                 AnomalyKind::kUnreachable,
                                 static_cast<double>(st.fail_streak)});
    }
  }
  // Per-path sub-series (sprayed/adaptive pairs): one predictable branch
  // when off, a bounded slot update when on. Accumulated across windows —
  // a sprayed pair spreads each window's samples over up to spray_ways
  // members, so per-window member counts are too thin to judge alone.
  if (cfg_.track_paths) note_path(h, path_id, delivered, rtt_us);
  const std::size_t fired = out.size() - before;
  m_events_.add(fired);
  return fired;
}

void AnomalyDetector::note_path(PairHandle h, std::uint32_t path_id,
                                bool delivered, double rtt_us) {
  PathSlot* const slots =
      paths_.data() + static_cast<std::size_t>(h) * kPathSlots;
  const std::uint32_t key = path_id + 1;
  PathSlot* slot = nullptr;
  for (std::uint32_t i = 0; i < kPathSlots; ++i) {
    if (slots[i].key == key) {
      slot = &slots[i];
      break;
    }
    if (slot == nullptr && slots[i].key == 0) slot = &slots[i];
  }
  if (slot == nullptr) {
    // A 9th distinct member: steal the least-sampled slot (lowest index on
    // ties) — deterministic, bounded, and it forgets the member with the
    // least evidence.
    slot = &slots[0];
    for (std::uint32_t i = 1; i < kPathSlots; ++i) {
      if (slots[i].sent < slot->sent) slot = &slots[i];
    }
    *slot = PathSlot{};
  }
  if (slot->key != key) {
    *slot = PathSlot{};
    slot->key = key;
  }
  ++slot->sent;
  if (delivered) {
    slot->rtt_sum += static_cast<float>(rtt_us);
  } else {
    ++slot->lost;
  }
}

void AnomalyDetector::evaluate_paths(PairHandle h, SimTime at,
                                     std::vector<AnomalyEvent>& events) {
  PathSlot* const slots =
      paths_.data() + static_cast<std::size_t>(h) * kPathSlots;
  std::uint32_t occupied = 0;
  std::uint64_t tot_sent = 0;
  std::uint64_t tot_lost = 0;
  double tot_rtt = 0.0;
  for (std::uint32_t i = 0; i < kPathSlots; ++i) {
    if (slots[i].key == 0) continue;
    ++occupied;
    tot_sent += slots[i].sent;
    tot_lost += slots[i].lost;
    tot_rtt += slots[i].rtt_sum;
  }
  // Differential detection needs siblings as the control group: with one
  // member there is nothing to compare against (the whole-pair rules own
  // that regime).
  if (occupied < 2) return;
  const PairCold& cold = cold_[h];
  for (std::uint32_t i = 0; i < kPathSlots; ++i) {
    PathSlot& s = slots[i];
    if (s.key == 0 || s.sent < cfg_.min_samples_per_window) continue;
    const std::uint64_t rest_sent = tot_sent - s.sent;
    if (rest_sent < cfg_.min_samples_per_window) continue;
    const std::uint64_t rest_lost = tot_lost - s.lost;
    const double loss =
        static_cast<double>(s.lost) / static_cast<double>(s.sent);
    const double rest_loss = static_cast<double>(rest_lost) /
                             static_cast<double>(rest_sent);
    // Member loss rule: over threshold in absolute terms AND clearly worse
    // than the pooled siblings (4x guards against fleet-wide loss being
    // re-reported once per member).
    if (s.lost >= cfg_.min_lost_per_window &&
        loss >= cfg_.loss_rate_threshold && loss >= 4.0 * rest_loss) {
      events.push_back(AnomalyEvent{cold.pair, at, AnomalyKind::kPacketLoss,
                                    loss, s.key - 1});
      s = PathSlot{s.key, 0, 0, 0.0f};  // re-arm: keep the member, drop
                                        // the consumed evidence
      continue;
    }
    // Member latency rule: mean RTT relatively shifted against the pooled
    // siblings' mean (same min_relative_shift knob as the LOF gate).
    const std::uint32_t del = s.sent - s.lost;
    const std::uint64_t rest_del = rest_sent - rest_lost;
    if (del >= cfg_.min_samples_per_window &&
        rest_del >= cfg_.min_samples_per_window) {
      const double mean = static_cast<double>(s.rtt_sum) / del;
      const double rest_mean =
          (tot_rtt - static_cast<double>(s.rtt_sum)) /
          static_cast<double>(rest_del);
      if (rest_mean > 0.0 && mean / rest_mean - 1.0 >= cfg_.min_relative_shift) {
        events.push_back(AnomalyEvent{cold.pair, at,
                                      AnomalyKind::kLatencyShortTerm,
                                      mean / rest_mean, s.key - 1});
        s = PathSlot{s.key, 0, 0, 0.0f};
      }
    }
  }
}

std::span<const double> AnomalyDetector::window_sorted(PairHandle h) {
  PairHot& hot = hot_[h];
  double* strip = samples_.data() + static_cast<std::size_t>(h) * stride_;
  if (hot.short_count <= stride_) {
    // The common case: the whole window fits its strip; sort in place,
    // no copies, no allocation, branchlessly (a strip holds at most 8
    // samples by default). Same multiset as the arrival-order accumulator
    // it replaced, so summaries are bit-identical.
    sort_small(strip, hot.short_count);
    return {strip, hot.short_count};
  }
  const auto& spill = cold_[h].spill;
  sort_scratch_.assign(strip, strip + stride_);
  sort_scratch_.insert(sort_scratch_.end(), spill.begin(), spill.end());
  std::sort(sort_scratch_.begin(), sort_scratch_.end());
  return {sort_scratch_.data(), sort_scratch_.size()};
}

void AnomalyDetector::close_short_window(PairHandle h, SimTime at,
                                         std::vector<AnomalyEvent>& events) {
  PairHot& hot = hot_[h];
  PairCold& cold = cold_[h];
  const SimTime w_start = hot.short_start;
  // At fleet scale a close misses on every line it touches, serially:
  // nothing keeps 10k+ pairs' cold state cached between 30 s window
  // boundaries. Both addresses below are computable without loading
  // anything, so start the fetches now and let the strip sort and summary
  // (which need neither) overlap them.
  const auto* cold_bytes = reinterpret_cast<const unsigned char*>(&cold);
  for (std::size_t off = 0; off < sizeof(PairCold); off += 64) {
    __builtin_prefetch(cold_bytes + off, 1);
  }
  __builtin_prefetch(p50_.data() + static_cast<std::size_t>(h) * p50_stride_,
                     1);
  m_short_closed_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("detector", "window.short.close", at, hot.short_sent,
                         hot.short_lost);
  }
  if (cfg_.window_quorum > 0 && hot.short_sent < cfg_.window_quorum) {
    // Below quorum the window is kInsufficient: no verdict of any kind,
    // and its samples never reach the long-term accumulators either — a
    // response-dropping measurement plane starves the detector instead of
    // feeding it windows whose statistics are noise.
    m_insufficient_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("detector", "window.short.insufficient", at,
                           hot.short_sent, hot.short_lost);
    }
    if (!cfg_.streaming) {
      // The batch path folded this window's samples into long_rtts at
      // ingest; un-fold them so both paths starve the Z-test identically.
      cold.long_rtts.resize(cold.long_rtts.size() - cold.short_rtts.size());
    }
    log_window(cold.pair, w_start, at, hot.short_sent, hot.short_lost, 0.0f,
               0.0f, obs::kWindowInsufficient);
    hot.short_open = false;
    hot.short_count = 0;
    cold.spill.clear();
    cold.short_rtts.clear();
    hot.short_sent = 0;
    hot.short_lost = 0;
    return;
  }
  // Sorted once, shared by the feature summary and the long-term fold.
  // Empty (and cheap) when nothing was delivered.
  const std::span<const double> sorted =
      cfg_.streaming ? window_sorted(h) : std::span<const double>{};
  std::uint32_t log_flags = 0;
  float log_p50 = 0.0f;
  float log_score = 0.0f;
  if (hot.short_sent >= cfg_.min_samples_per_window) {
    const double loss_rate = static_cast<double>(hot.short_lost) /
                             static_cast<double>(hot.short_sent);
    if (loss_rate >= cfg_.loss_rate_threshold &&
        hot.short_lost >= cfg_.min_lost_per_window) {
      events.push_back(
          AnomalyEvent{cold.pair, at, AnomalyKind::kPacketLoss, loss_rate});
      log_flags |= obs::kWindowLossFired;
    }
    if (cfg_.streaming) {
      if (sorted.size() >= cfg_.min_samples_per_window) {
        const WindowSummary summary =
            robust_summary(sorted, cfg_.rtt_clamp_iqr_mult,
                           cfg_.rtt_clamp_band_frac);
        cold.feature = {summary.p25,  summary.p50,    summary.p75,
                        summary.min,  summary.mean,   summary.stddev,
                        summary.max};
        log_p50 = static_cast<float>(summary.p50);
        if (!cold.lof) cold.lof.emplace(cfg_.lof, cfg_.lookback_windows + 1);
        // The pair's magnitude-gate strip: look-back medians kept sorted
        // (first region) and in window order (second region). Entry count
        // is the LOF model's size — both are pushed and evicted in
        // lock-step below.
        double* const p50s =
            p50_.data() + static_cast<std::size_t>(h) * p50_stride_;
        double* const p50f = p50s + p50_cap_;
        std::size_t p50n = cold.lof->size();
        const bool scoreable = p50n >= cfg_.lof.k_neighbors + 1;
        // Magnitude gate against the look-back median-of-medians; the
        // sorted ring makes it O(1) instead of a copy + sort per close.
        // (Read before the push below so the new window's own median
        // cannot dilute its reference.)
        const double ref_median = scoreable ? p50s[p50n / 2] : 0.0;
        // Push first, then score the newest point in-model: the batch
        // scorer appends its query to the reference before scoring, so
        // `last_score` is the same number without a second distance pass.
        cold.lof->push(cold.feature);
        if (scoreable) {
          // Only an upward shift is a failure symptom; a drop back toward
          // normal (e.g. recovery against a fault-contaminated look-back)
          // must not alarm. The event needs the shift gate AND the LOF
          // gate, so test the O(1) magnitude gate first: on the healthy
          // steady state (almost every close) it fails and the scoring
          // pass is skipped outright — the model stays current either way
          // because push/pop above and below maintain it regardless.
          const double shift =
              ref_median > 0.0 ? (summary.p50 - ref_median) / ref_median : 0.0;
          if (shift >= cfg_.min_relative_shift) {
            const double score = cold.lof->last_score();
            log_score = static_cast<float>(score);
            log_flags |= obs::kWindowScored;
            if (obs_ != nullptr) {
              obs_->tracer.instant("detector", "lof.score", at, 0, 0, score);
            }
            if (score > cfg_.lof.outlier_threshold) {
              events.push_back(AnomalyEvent{cold.pair, at,
                                            AnomalyKind::kLatencyShortTerm,
                                            score});
              log_flags |= obs::kWindowLofFired;
            }
          } else {
            m_gate_skips_.inc();
            if (obs_ != nullptr) {
              obs_->tracer.instant("detector", "lof.gate_skip", at, 0, 0,
                                   shift);
            }
          }
        }
        p50f[p50n] = summary.p50;
        double* const ins = std::upper_bound(p50s, p50s + p50n, summary.p50);
        std::copy_backward(ins, p50s + p50n, p50s + p50n + 1);
        *ins = summary.p50;
        ++p50n;
        while (cold.lof->size() > cfg_.lookback_windows) {
          cold.lof->pop_front();
          const double evicted = p50f[0];
          std::copy(p50f + 1, p50f + p50n, p50f);
          double* const del = std::lower_bound(p50s, p50s + p50n, evicted);
          std::copy(del + 1, p50s + p50n, del);
          --p50n;
        }
      }
    } else if (cold.short_rtts.size() >= cfg_.min_samples_per_window) {
      std::vector<double> sorted_rtts = cold.short_rtts;
      std::sort(sorted_rtts.begin(), sorted_rtts.end());
      const auto summary =
          robust_summary(sorted_rtts, cfg_.rtt_clamp_iqr_mult,
                         cfg_.rtt_clamp_band_frac);
      const auto feature = summary.as_feature_vector();
      log_p50 = static_cast<float>(summary.p50);
      if (cold.lookback.size() >= cfg_.lof.k_neighbors + 1) {
        const std::vector<std::vector<double>> reference(cold.lookback.begin(),
                                                         cold.lookback.end());
        const double score = ml::lof_score_of(feature, reference, cfg_.lof);
        log_score = static_cast<float>(score);
        log_flags |= obs::kWindowScored;
        // Magnitude gate: index 1 of the feature vector is the median.
        std::vector<double> medians;
        medians.reserve(reference.size());
        for (const auto& w : reference) medians.push_back(w[1]);
        std::sort(medians.begin(), medians.end());
        const double ref_median = medians[medians.size() / 2];
        const double shift =
            ref_median > 0.0 ? (summary.p50 - ref_median) / ref_median : 0.0;
        if (score > cfg_.lof.outlier_threshold &&
            shift >= cfg_.min_relative_shift) {
          events.push_back(AnomalyEvent{cold.pair, at,
                                        AnomalyKind::kLatencyShortTerm, score});
          log_flags |= obs::kWindowLofFired;
        }
      }
      cold.lookback.push_back(feature);
      while (cold.lookback.size() > cfg_.lookback_windows) {
        cold.lookback.pop_front();
      }
    }
  }
  if (cfg_.streaming) {
    // Fold this window's delivered samples into the long-window
    // accumulators exactly once, at close. Sorted rather than arrival
    // order: Welford moments differ only in FP rounding.
    cold.long_seen += sorted.size();
    for (const double v : sorted) {
      if (v > 0.0) cold.long_log.add(std::log(v));
    }
  }
  // Per-path differential pass piggybacks on the close cadence: the slots
  // accumulate across windows, so this is when enough members have enough
  // evidence to compare.
  if (cfg_.track_paths) evaluate_paths(h, at, events);
  log_window(cold.pair, w_start, at, hot.short_sent, hot.short_lost, log_p50,
             log_score, log_flags);
  hot.short_open = false;
  hot.short_count = 0;
  cold.spill.clear();
  cold.short_rtts.clear();
  hot.short_sent = 0;
  hot.short_lost = 0;
}

void AnomalyDetector::close_long_window(PairHandle h, SimTime at,
                                        std::vector<AnomalyEvent>& events) {
  PairHot& hot = hot_[h];
  PairCold& cold = cold_[h];
  m_long_closed_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("detector", "window.long.close", at,
                         cfg_.streaming ? cold.long_seen
                                        : cold.long_rtts.size());
  }
  const std::size_t n =
      cfg_.streaming ? cold.long_seen : cold.long_rtts.size();
  std::uint32_t log_flags = obs::kWindowLong;
  float log_score = 0.0f;
  if (n >= cfg_.min_samples_per_window) {
    if (!cold.baseline) {
      // First complete window: fit the log-normal baseline (time T of
      // Figure 14).
      cold.baseline = cfg_.streaming ? ml::fit_lognormal(cold.long_log)
                                     : ml::fit_lognormal(cold.long_rtts);
    } else {
      const auto result = cfg_.streaming
                              ? ml::z_test(*cold.baseline, cold.long_log,
                                           cfg_.z_alpha)
                              : ml::z_test(*cold.baseline, cold.long_rtts,
                                           cfg_.z_alpha);
      const auto window_fit = cfg_.streaming
                                  ? ml::fit_lognormal(cold.long_log)
                                  : ml::fit_lognormal(cold.long_rtts);
      // Signed: only degradation (upward drift) is a failure; the recovery
      // window after a fault shifts downward and must not re-alarm.
      const double shift = std::exp(window_fit.mu - cold.baseline->mu) - 1.0;
      log_score = static_cast<float>(std::abs(result.z));
      log_flags |= obs::kWindowScored;
      if (result.reject && shift >= cfg_.long_term_min_shift) {
        events.push_back(AnomalyEvent{cold.pair, at,
                                      AnomalyKind::kLatencyLongTerm,
                                      std::abs(result.z)});
        log_flags |= obs::kWindowZFired;
      }
      // Always re-baseline on the freshest window: a pass tracks legitimate
      // slow change, and after an alarm the detector must adopt the new
      // regime instead of re-alarming every 30 minutes against a stale (or
      // fault-contaminated) fit. Continued drift still re-alarms because
      // each window shifts against its predecessor.
      cold.baseline = window_fit;
    }
  }
  log_window(cold.pair, hot.long_start, at,
             static_cast<std::uint32_t>(
                 std::min<std::size_t>(n, UINT32_MAX)),
             0, 0.0f, log_score, log_flags);
  hot.long_open = false;
  cold.long_log = RunningStats{};
  cold.long_seen = 0;
  cold.long_rtts.clear();
}

void AnomalyDetector::recycle(PairHandle h) {
  PairCold& cold = cold_[h];
  if (cold.lof) {
    // The per-pair LOF counters die with the model; carry them so
    // `counters()` totals stay monotonic across recycling.
    lof_fast_carry_ += cold.lof->fast_path_scores();
    lof_fallback_carry_ += cold.lof->fallback_scores();
    lof_rebuild_carry_ += cold.lof->kdist_rebuilds();
  }
  index_.erase(cold.pair);
  index_.free_id(h);
  hot_[h] = PairHot{};
  cold_[h] = PairCold{};
  // The strip needs no reset: short_count == 0 makes it dead storage. The
  // path slots DO reset — their keys would otherwise leak a dead pair's
  // members into the slot's next tenant.
  if (cfg_.track_paths) {
    std::fill_n(paths_.begin() + static_cast<std::size_t>(h) * kPathSlots,
                kPathSlots, PathSlot{});
  }
}

std::vector<AnomalyEvent> AnomalyDetector::flush(SimTime now) {
  std::vector<AnomalyEvent> events;
  for (std::size_t h = 0; h < hot_.size(); ++h) {
    PairHot& hot = hot_[h];
    // A still-open window is only judged when it actually reached its span:
    // a few-second partial window must not fire (say) a 30-minute Z-test.
    // Recycled slots are naturally skipped (no open windows).
    if (hot.short_open && now - hot.short_start >= cfg_.short_window) {
      close_short_window(static_cast<PairHandle>(h),
                         hot.short_start + cfg_.short_window, events);
    }
    if (hot.long_open && now - hot.long_start >= cfg_.long_window) {
      close_long_window(static_cast<PairHandle>(h),
                        hot.long_start + cfg_.long_window, events);
    }
  }
  // Only now that every retired pair's final windows have been judged do
  // the still-parked slots recycle; a pair revived by late traffic since
  // its retirement keeps its slot (flag already cleared at ingest).
  for (const PairHandle id : parked_) {
    if (hot_[id].parked) recycle(id);
  }
  parked_.clear();
  m_events_.add(events.size());
  return events;
}

bool AnomalyDetector::extract_pair(const EndpointPair& pair, PairState& out) {
  const PairHandle h = index_.find(pair);
  if (h == common::FlatPairTable::kNoSlot) return false;
  out.stride_ = stride_;
  out.p50_stride_ = p50_stride_;
  out.hot_ = hot_[h];
  out.cold_ = std::move(cold_[h]);
  const double* strip = samples_.data() + static_cast<std::size_t>(h) * stride_;
  out.samples_.assign(strip, strip + stride_);
  const double* gate = p50_.data() + static_cast<std::size_t>(h) * p50_stride_;
  out.p50_.assign(gate, gate + p50_stride_);
  if (cfg_.track_paths) {
    const PathSlot* ps =
        paths_.data() + static_cast<std::size_t>(h) * kPathSlots;
    out.paths_.assign(ps, ps + kPathSlots);
  } else {
    out.paths_.clear();
  }
  // Annul any parking: a parked pair that migrates is the new home's to
  // retire (or revive). The LOF model moved out above, so no counter carry:
  // its path counts travel with it and reappear in the adopter's totals.
  parked_.erase(std::remove(parked_.begin(), parked_.end(), h),
                parked_.end());
  index_.erase(pair);
  index_.free_id(h);
  hot_[h] = PairHot{};
  cold_[h] = PairCold{};
  if (cfg_.track_paths) {
    std::fill_n(paths_.begin() + static_cast<std::size_t>(h) * kPathSlots,
                kPathSlots, PathSlot{});
  }
  return true;
}

AnomalyDetector::PairHandle AnomalyDetector::adopt_pair(PairState&& st) {
  if (st.stride_ != stride_ || st.p50_stride_ != p50_stride_ ||
      st.paths_.size() != (cfg_.track_paths ? kPathSlots : 0u)) {
    throw std::logic_error(
        "adopt_pair: strip geometry mismatch (detector configs differ)");
  }
  if (index_.find(st.cold_.pair) != common::FlatPairTable::kNoSlot) {
    throw std::logic_error("adopt_pair: pair already mapped");
  }
  const PairHandle h = handle_of(st.cold_.pair);
  hot_[h] = st.hot_;
  cold_[h] = std::move(st.cold_);
  std::copy(st.samples_.begin(), st.samples_.end(),
            samples_.begin() + static_cast<std::size_t>(h) * stride_);
  std::copy(st.p50_.begin(), st.p50_.end(),
            p50_.begin() + static_cast<std::size_t>(h) * p50_stride_);
  if (cfg_.track_paths) {
    std::copy(st.paths_.begin(), st.paths_.end(),
              paths_.begin() + static_cast<std::size_t>(h) * kPathSlots);
  }
  if (hot_[h].parked) parked_.push_back(h);
  return h;
}

AnomalyDetector::Snapshot AnomalyDetector::snapshot() const {
  Snapshot s;
  s.stride_ = stride_;
  s.index_ = index_;
  s.hot_ = hot_;
  s.cold_ = cold_;
  s.samples_ = samples_;
  s.p50_ = p50_;
  s.paths_ = paths_;
  s.parked_ = parked_;
  return s;
}

void AnomalyDetector::restore(const Snapshot& snap) {
  stride_ = snap.stride_ != 0 ? snap.stride_ : stride_;
  index_ = snap.index_;
  hot_ = snap.hot_;
  cold_ = snap.cold_;
  samples_ = snap.samples_;
  p50_ = snap.p50_;
  paths_ = snap.paths_;
  parked_ = snap.parked_;
}

DetectorCounters AnomalyDetector::counters() const {
  DetectorCounters c;
  c.probes_ingested = metrics_->counter_total(id_probes_);
  c.samples_delivered = metrics_->counter_total(id_delivered_);
  c.short_windows_closed = metrics_->counter_total(id_short_closed_);
  c.long_windows_closed = metrics_->counter_total(id_long_closed_);
  c.lof_gate_skips = metrics_->counter_total(id_gate_skips_);
  c.events_emitted = metrics_->counter_total(id_events_);
  c.windows_insufficient = metrics_->counter_total(id_insufficient_);
  c.duplicates_rejected = metrics_->counter_total(id_dup_rejected_);
  c.stale_rejected = metrics_->counter_total(id_stale_rejected_);
  c.lof_fast_path = lof_fast_carry_;
  c.lof_fallback = lof_fallback_carry_;
  c.lof_kdist_rebuilds = lof_rebuild_carry_;
  for (const auto& cold : cold_) {
    if (cold.lof) {
      c.lof_fast_path += cold.lof->fast_path_scores();
      c.lof_fallback += cold.lof->fallback_scores();
      c.lof_kdist_rebuilds += cold.lof->kdist_rebuilds();
    }
  }
  return c;
}

}  // namespace skh::core
