#include "core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

namespace skh::core {

std::string_view to_string(AnomalyKind k) noexcept {
  switch (k) {
    case AnomalyKind::kUnreachable: return "unreachable";
    case AnomalyKind::kPacketLoss: return "packet-loss";
    case AnomalyKind::kLatencyShortTerm: return "latency-short-term";
    case AnomalyKind::kLatencyLongTerm: return "latency-long-term";
  }
  return "unknown";
}

namespace {

/// Start of the window (on the nominal grid anchored at `boundary`) that
/// contains `t`. A probe gap spanning several windows skips the sample-less
/// windows entirely instead of dragging every later boundary to the late
/// sample.
SimTime aligned_restart(SimTime boundary, SimTime t, SimTime window) {
  const std::int64_t w = window.raw_nanos();
  if (w <= 0) return t;
  const std::int64_t missed = (t - boundary).raw_nanos() / w;
  return SimTime::nanos(boundary.raw_nanos() + missed * w);
}

/// Window summary over pre-sorted samples, with the robust-scale clamp
/// applied to the moment coordinates (mean/std/max): samples above
/// p75 + max(iqr_mult * IQR, band_frac * p50) are winsorized to that cap.
/// Percentiles are order statistics of the window body and stay raw. With
/// iqr_mult == 0 (or no sample above the cap) this reproduces
/// WindowAccumulator::summary()'s sorted-order moments exactly; both
/// detector paths route through it, so their feature vectors agree
/// bit-for-bit.
WindowSummary robust_summary(std::span<const double> sorted, double iqr_mult,
                             double band_frac) {
  WindowSummary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  s.min = sorted.front();
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  double cap = std::numeric_limits<double>::infinity();
  if (iqr_mult > 0.0) {
    cap = s.p75 +
          std::max(iqr_mult * (s.p75 - s.p25), band_frac * s.p50);
  }
  double sum = 0.0;
  for (const double v : sorted) sum += std::min(v, cap);
  s.mean = sum / static_cast<double>(sorted.size());
  if (sorted.size() >= 2) {
    double s2 = 0.0;
    for (const double v : sorted) {
      const double d = std::min(v, cap) - s.mean;
      s2 += d * d;
    }
    s.stddev = std::sqrt(s2 / static_cast<double>(sorted.size() - 1));
  }
  s.max = std::min(sorted.back(), cap);
  return s;
}

}  // namespace

AnomalyDetector::AnomalyDetector(DetectorConfig cfg)
    : cfg_(cfg), own_registry_(std::make_unique<obs::MetricsRegistry>()) {
  bind_metrics(*own_registry_);
}

void AnomalyDetector::bind_metrics(obs::MetricsRegistry& r) {
  metrics_ = &r;
  id_probes_ = r.counter_id("detector.probes_ingested");
  id_delivered_ = r.counter_id("detector.samples_delivered");
  id_short_closed_ = r.counter_id("detector.short_windows_closed");
  id_long_closed_ = r.counter_id("detector.long_windows_closed");
  id_gate_skips_ = r.counter_id("detector.lof_gate_skips");
  id_events_ = r.counter_id("detector.events_emitted");
  id_insufficient_ = r.counter_id("detector.windows_insufficient");
  id_dup_rejected_ = r.counter_id("detector.duplicates_rejected");
  id_stale_rejected_ = r.counter_id("detector.stale_rejected");
  m_probes_ = r.bind_counter(id_probes_);
  m_delivered_ = r.bind_counter(id_delivered_);
  m_short_closed_ = r.bind_counter(id_short_closed_);
  m_long_closed_ = r.bind_counter(id_long_closed_);
  m_gate_skips_ = r.bind_counter(id_gate_skips_);
  m_events_ = r.bind_counter(id_events_);
  m_insufficient_ = r.bind_counter(id_insufficient_);
  m_dup_rejected_ = r.bind_counter(id_dup_rejected_);
  m_stale_rejected_ = r.bind_counter(id_stale_rejected_);
}

void AnomalyDetector::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  bind_metrics(ctx != nullptr ? ctx->registry : *own_registry_);
}

AnomalyDetector::PairHandle AnomalyDetector::handle_of(
    const EndpointPair& pair) {
  const auto [it, inserted] =
      index_.try_emplace(pair, static_cast<PairHandle>(hot_.size()));
  if (inserted) {
    hot_.emplace_back();
    cold_.emplace_back();
    seq_.emplace_back();
    cold_.back().pair = pair;
  }
  return it->second;
}

std::vector<AnomalyEvent> AnomalyDetector::ingest(const probe::ProbeResult& r) {
  std::vector<AnomalyEvent> events;
  (void)ingest(handle_of(r.pair), r.seq, r.sent_at, r.delivered, r.rtt_us,
               events);
  return events;
}

std::size_t AnomalyDetector::ingest(PairHandle h, std::uint64_t seq,
                                    SimTime sent_at, bool delivered,
                                    double rtt_us,
                                    std::vector<AnomalyEvent>& out) {
  const std::size_t before = out.size();
  PairHot& st = hot_[h];
  m_probes_.inc();

  // Gray-telemetry rejection, before any window state is touched: a lying
  // delivery must not close windows, drag the grid, or double-count.
  SeqState& sq = seq_[h];
  if (seq != 0) {
    if (seq == sq.last_seq && sent_at == sq.last_sent) {
      m_dup_rejected_.inc();  // duplicated delivery: counted exactly once
      return 0;
    }
    if (seq < sq.last_seq && sent_at <= sq.last_sent) {
      m_stale_rejected_.inc();  // reordered straggler from an earlier round
      return 0;
    }
  }
  if (st.short_open && sent_at < st.short_start) {
    // Timestamped before the window it would land in: a skewed clock or a
    // delivery delayed across a close. Window attribution would be wrong
    // whatever we did, so drop it (a legitimate sequence reset after a
    // replan always carries a fresh timestamp and is unaffected).
    m_stale_rejected_.inc();
    return 0;
  }
  if (seq != 0) {
    sq.last_seq = seq;
    sq.last_sent = sent_at;
  }

  // Window rollover checks happen before the sample is added, so a sample
  // after the boundary closes the previous window first. Closes are stamped
  // at the nominal boundary (start + window), not at the triggering
  // sample's timestamp, and the next window reopens on the nominal grid.
  if (st.short_open) {
    const SimTime boundary = st.short_start + cfg_.short_window;
    if (sent_at >= boundary) {
      close_short_window(st, cold_[h], boundary, out);
      st.short_open = true;
      st.short_start = aligned_restart(boundary, sent_at, cfg_.short_window);
    }
  } else {
    st.short_open = true;
    st.short_start = sent_at;
  }
  if (st.long_open) {
    const SimTime boundary = st.long_start + cfg_.long_window;
    if (sent_at >= boundary) {
      close_long_window(st, cold_[h], boundary, out);
      st.long_open = true;
      st.long_start = aligned_restart(boundary, sent_at, cfg_.long_window);
    }
  } else {
    st.long_open = true;
    st.long_start = sent_at;
  }

  ++st.short_sent;
  if (delivered) {
    m_delivered_.inc();
    if (cfg_.streaming) {
      // Long-window accumulation is folded into the short-window close:
      // the long window is a short-window multiple on the same grid, so
      // every long close is preceded by the short close covering its tail.
      st.short_win.add(rtt_us);
    } else {
      PairCold& cold = cold_[h];
      cold.short_rtts.push_back(rtt_us);
      cold.long_rtts.push_back(rtt_us);
    }
    st.fail_streak = 0;
    st.unreachable_alarmed = false;
  } else {
    ++st.short_lost;
    ++st.fail_streak;
    if (st.fail_streak >= cfg_.unreachable_streak &&
        !st.unreachable_alarmed) {
      st.unreachable_alarmed = true;
      out.push_back(AnomalyEvent{cold_[h].pair, sent_at,
                                 AnomalyKind::kUnreachable,
                                 static_cast<double>(st.fail_streak)});
    }
  }
  const std::size_t fired = out.size() - before;
  m_events_.add(fired);
  return fired;
}

void AnomalyDetector::close_short_window(PairHot& hot, PairCold& cold,
                                         SimTime at,
                                         std::vector<AnomalyEvent>& events) {
  m_short_closed_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("detector", "window.short.close", at, hot.short_sent,
                         hot.short_lost);
  }
  if (cfg_.window_quorum > 0 && hot.short_sent < cfg_.window_quorum) {
    // Below quorum the window is kInsufficient: no verdict of any kind,
    // and its samples never reach the long-term accumulators either — a
    // response-dropping measurement plane starves the detector instead of
    // feeding it windows whose statistics are noise.
    m_insufficient_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("detector", "window.short.insufficient", at,
                           hot.short_sent, hot.short_lost);
    }
    if (!cfg_.streaming) {
      // The batch path folded this window's samples into long_rtts at
      // ingest; un-fold them so both paths starve the Z-test identically.
      cold.long_rtts.resize(cold.long_rtts.size() - cold.short_rtts.size());
    }
    hot.short_open = false;
    hot.short_win.reset();
    cold.short_rtts.clear();
    hot.short_sent = 0;
    hot.short_lost = 0;
    return;
  }
  if (hot.short_sent >= cfg_.min_samples_per_window) {
    const double loss_rate = static_cast<double>(hot.short_lost) /
                             static_cast<double>(hot.short_sent);
    if (loss_rate >= cfg_.loss_rate_threshold &&
        hot.short_lost >= cfg_.min_lost_per_window) {
      events.push_back(
          AnomalyEvent{cold.pair, at, AnomalyKind::kPacketLoss, loss_rate});
    }
    if (cfg_.streaming) {
      if (hot.short_win.count() >= cfg_.min_samples_per_window) {
        const WindowSummary summary =
            robust_summary(hot.short_win.sorted(), cfg_.rtt_clamp_iqr_mult,
                           cfg_.rtt_clamp_band_frac);
        auto& f = cold.feature;
        f.clear();
        f.push_back(summary.p25);
        f.push_back(summary.p50);
        f.push_back(summary.p75);
        f.push_back(summary.min);
        f.push_back(summary.mean);
        f.push_back(summary.stddev);
        f.push_back(summary.max);
        if (!cold.lof) cold.lof.emplace(cfg_.lof, cfg_.lookback_windows + 1);
        const bool scoreable = cold.lof->size() >= cfg_.lof.k_neighbors + 1;
        // Magnitude gate against the look-back median-of-medians; the
        // sorted ring makes it O(1) instead of a copy + sort per close.
        // (Read before the push below so the new window's own median
        // cannot dilute its reference.)
        const double ref_median =
            scoreable ? cold.p50_sorted[cold.p50_sorted.size() / 2] : 0.0;
        // Push first, then score the newest point in-model: the batch
        // scorer appends its query to the reference before scoring, so
        // `last_score` is the same number without a second distance pass.
        cold.lof->push(f);
        if (scoreable) {
          // Only an upward shift is a failure symptom; a drop back toward
          // normal (e.g. recovery against a fault-contaminated look-back)
          // must not alarm. The event needs the shift gate AND the LOF
          // gate, so test the O(1) magnitude gate first: on the healthy
          // steady state (almost every close) it fails and the scoring
          // pass is skipped outright — the model stays current either way
          // because push/pop above and below maintain it regardless.
          const double shift =
              ref_median > 0.0 ? (summary.p50 - ref_median) / ref_median : 0.0;
          if (shift >= cfg_.min_relative_shift) {
            const double score = cold.lof->last_score();
            if (obs_ != nullptr) {
              obs_->tracer.instant("detector", "lof.score", at, 0, 0, score);
            }
            if (score > cfg_.lof.outlier_threshold) {
              events.push_back(AnomalyEvent{cold.pair, at,
                                            AnomalyKind::kLatencyShortTerm,
                                            score});
            }
          } else {
            m_gate_skips_.inc();
            if (obs_ != nullptr) {
              obs_->tracer.instant("detector", "lof.gate_skip", at, 0, 0,
                                   shift);
            }
          }
        }
        cold.p50_fifo.push_back(summary.p50);
        cold.p50_sorted.insert(
            std::upper_bound(cold.p50_sorted.begin(), cold.p50_sorted.end(),
                             summary.p50),
            summary.p50);
        while (cold.lof->size() > cfg_.lookback_windows) {
          cold.lof->pop_front();
          const double evicted = cold.p50_fifo.front();
          cold.p50_fifo.erase(cold.p50_fifo.begin());
          cold.p50_sorted.erase(std::lower_bound(cold.p50_sorted.begin(),
                                                 cold.p50_sorted.end(),
                                                 evicted));
        }
      }
    } else if (cold.short_rtts.size() >= cfg_.min_samples_per_window) {
      std::vector<double> sorted_rtts = cold.short_rtts;
      std::sort(sorted_rtts.begin(), sorted_rtts.end());
      const auto summary =
          robust_summary(sorted_rtts, cfg_.rtt_clamp_iqr_mult,
                         cfg_.rtt_clamp_band_frac);
      const auto feature = summary.as_feature_vector();
      if (cold.lookback.size() >= cfg_.lof.k_neighbors + 1) {
        const std::vector<std::vector<double>> reference(cold.lookback.begin(),
                                                         cold.lookback.end());
        const double score = ml::lof_score_of(feature, reference, cfg_.lof);
        // Magnitude gate: index 1 of the feature vector is the median.
        std::vector<double> medians;
        medians.reserve(reference.size());
        for (const auto& w : reference) medians.push_back(w[1]);
        std::sort(medians.begin(), medians.end());
        const double ref_median = medians[medians.size() / 2];
        const double shift =
            ref_median > 0.0 ? (summary.p50 - ref_median) / ref_median : 0.0;
        if (score > cfg_.lof.outlier_threshold &&
            shift >= cfg_.min_relative_shift) {
          events.push_back(AnomalyEvent{cold.pair, at,
                                        AnomalyKind::kLatencyShortTerm, score});
        }
      }
      cold.lookback.push_back(feature);
      while (cold.lookback.size() > cfg_.lookback_windows) {
        cold.lookback.pop_front();
      }
    }
  }
  if (cfg_.streaming) {
    // Fold this window's delivered samples into the long-window
    // accumulators exactly once, at close. Sorted rather than arrival
    // order: Welford moments differ only in FP rounding.
    cold.long_seen += hot.short_win.count();
    for (const double v : hot.short_win.sorted()) {
      if (v > 0.0) cold.long_log.add(std::log(v));
    }
  }
  hot.short_open = false;
  hot.short_win.reset();
  cold.short_rtts.clear();
  hot.short_sent = 0;
  hot.short_lost = 0;
}

void AnomalyDetector::close_long_window(PairHot& hot, PairCold& cold,
                                        SimTime at,
                                        std::vector<AnomalyEvent>& events) {
  m_long_closed_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("detector", "window.long.close", at,
                         cfg_.streaming ? cold.long_seen
                                        : cold.long_rtts.size());
  }
  const std::size_t n =
      cfg_.streaming ? cold.long_seen : cold.long_rtts.size();
  if (n >= cfg_.min_samples_per_window) {
    if (!cold.baseline) {
      // First complete window: fit the log-normal baseline (time T of
      // Figure 14).
      cold.baseline = cfg_.streaming ? ml::fit_lognormal(cold.long_log)
                                     : ml::fit_lognormal(cold.long_rtts);
    } else {
      const auto result = cfg_.streaming
                              ? ml::z_test(*cold.baseline, cold.long_log,
                                           cfg_.z_alpha)
                              : ml::z_test(*cold.baseline, cold.long_rtts,
                                           cfg_.z_alpha);
      const auto window_fit = cfg_.streaming
                                  ? ml::fit_lognormal(cold.long_log)
                                  : ml::fit_lognormal(cold.long_rtts);
      // Signed: only degradation (upward drift) is a failure; the recovery
      // window after a fault shifts downward and must not re-alarm.
      const double shift = std::exp(window_fit.mu - cold.baseline->mu) - 1.0;
      if (result.reject && shift >= cfg_.long_term_min_shift) {
        events.push_back(AnomalyEvent{cold.pair, at,
                                      AnomalyKind::kLatencyLongTerm,
                                      std::abs(result.z)});
      }
      // Always re-baseline on the freshest window: a pass tracks legitimate
      // slow change, and after an alarm the detector must adopt the new
      // regime instead of re-alarming every 30 minutes against a stale (or
      // fault-contaminated) fit. Continued drift still re-alarms because
      // each window shifts against its predecessor.
      cold.baseline = window_fit;
    }
  }
  hot.long_open = false;
  cold.long_log = RunningStats{};
  cold.long_seen = 0;
  cold.long_rtts.clear();
}

std::vector<AnomalyEvent> AnomalyDetector::flush(SimTime now) {
  std::vector<AnomalyEvent> events;
  for (std::size_t h = 0; h < hot_.size(); ++h) {
    PairHot& hot = hot_[h];
    // A still-open window is only judged when it actually reached its span:
    // a few-second partial window must not fire (say) a 30-minute Z-test.
    if (hot.short_open && now - hot.short_start >= cfg_.short_window) {
      close_short_window(hot, cold_[h], hot.short_start + cfg_.short_window,
                         events);
    }
    if (hot.long_open && now - hot.long_start >= cfg_.long_window) {
      close_long_window(hot, cold_[h], hot.long_start + cfg_.long_window,
                        events);
    }
  }
  m_events_.add(events.size());
  return events;
}

AnomalyDetector::Snapshot AnomalyDetector::snapshot() const {
  Snapshot s;
  s.index_ = index_;
  s.hot_ = hot_;
  s.cold_ = cold_;
  s.seq_ = seq_;
  return s;
}

void AnomalyDetector::restore(const Snapshot& snap) {
  index_ = snap.index_;
  hot_ = snap.hot_;
  cold_ = snap.cold_;
  seq_ = snap.seq_;
}

DetectorCounters AnomalyDetector::counters() const {
  DetectorCounters c;
  c.probes_ingested = metrics_->counter_total(id_probes_);
  c.samples_delivered = metrics_->counter_total(id_delivered_);
  c.short_windows_closed = metrics_->counter_total(id_short_closed_);
  c.long_windows_closed = metrics_->counter_total(id_long_closed_);
  c.lof_gate_skips = metrics_->counter_total(id_gate_skips_);
  c.events_emitted = metrics_->counter_total(id_events_);
  c.windows_insufficient = metrics_->counter_total(id_insufficient_);
  c.duplicates_rejected = metrics_->counter_total(id_dup_rejected_);
  c.stale_rejected = metrics_->counter_total(id_stale_rejected_);
  for (const auto& cold : cold_) {
    if (cold.lof) {
      c.lof_fast_path += cold.lof->fast_path_scores();
      c.lof_fallback += cold.lof->fallback_scores();
      c.lof_kdist_rebuilds += cold.lof->kdist_rebuilds();
    }
  }
  return c;
}

}  // namespace skh::core
