#include "core/anomaly.h"

#include <algorithm>
#include <cmath>

namespace skh::core {

std::string_view to_string(AnomalyKind k) noexcept {
  switch (k) {
    case AnomalyKind::kUnreachable: return "unreachable";
    case AnomalyKind::kPacketLoss: return "packet-loss";
    case AnomalyKind::kLatencyShortTerm: return "latency-short-term";
    case AnomalyKind::kLatencyLongTerm: return "latency-long-term";
  }
  return "unknown";
}

AnomalyDetector::AnomalyDetector(DetectorConfig cfg) : cfg_(cfg) {}

std::vector<AnomalyEvent> AnomalyDetector::ingest(
    const probe::ProbeResult& r) {
  std::vector<AnomalyEvent> events;
  auto& st = pairs_[r.pair];

  // Window rollover checks happen before the sample is added, so a sample
  // after the boundary closes the previous window first.
  if (st.short_start &&
      r.sent_at >= *st.short_start + cfg_.short_window) {
    close_short_window(r.pair, st, r.sent_at, events);
  }
  if (st.long_start && r.sent_at >= *st.long_start + cfg_.long_window) {
    close_long_window(r.pair, st, r.sent_at, events);
  }
  if (!st.short_start) st.short_start = r.sent_at;
  if (!st.long_start) st.long_start = r.sent_at;

  ++st.short_sent;
  if (r.delivered) {
    st.short_rtts.push_back(r.rtt_us);
    st.long_rtts.push_back(r.rtt_us);
    st.fail_streak = 0;
    st.unreachable_alarmed = false;
  } else {
    ++st.short_lost;
    ++st.fail_streak;
    if (st.fail_streak >= cfg_.unreachable_streak &&
        !st.unreachable_alarmed) {
      st.unreachable_alarmed = true;
      events.push_back(AnomalyEvent{r.pair, r.sent_at,
                                    AnomalyKind::kUnreachable,
                                    static_cast<double>(st.fail_streak)});
    }
  }
  return events;
}

void AnomalyDetector::close_short_window(const EndpointPair& pair,
                                         PairState& st, SimTime at,
                                         std::vector<AnomalyEvent>& events) {
  if (st.short_sent >= cfg_.min_samples_per_window) {
    const double loss_rate = static_cast<double>(st.short_lost) /
                             static_cast<double>(st.short_sent);
    if (loss_rate >= cfg_.loss_rate_threshold &&
        st.short_lost >= cfg_.min_lost_per_window) {
      events.push_back(
          AnomalyEvent{pair, at, AnomalyKind::kPacketLoss, loss_rate});
    }
    if (st.short_rtts.size() >= cfg_.min_samples_per_window) {
      const auto summary = summarize(st.short_rtts);
      const auto feature = summary.as_feature_vector();
      if (st.lookback.size() >= cfg_.lof.k_neighbors + 1) {
        const std::vector<std::vector<double>> reference(st.lookback.begin(),
                                                         st.lookback.end());
        const double score = ml::lof_score_of(feature, reference, cfg_.lof);
        // Magnitude gate: index 1 of the feature vector is the median.
        std::vector<double> medians;
        medians.reserve(reference.size());
        for (const auto& w : reference) medians.push_back(w[1]);
        std::sort(medians.begin(), medians.end());
        const double ref_median = medians[medians.size() / 2];
        // Only an upward shift is a failure symptom; a drop back toward
        // normal (e.g. recovery against a fault-contaminated look-back)
        // must not alarm.
        const double shift =
            ref_median > 0.0 ? (summary.p50 - ref_median) / ref_median : 0.0;
        if (score > cfg_.lof.outlier_threshold &&
            shift >= cfg_.min_relative_shift) {
          events.push_back(
              AnomalyEvent{pair, at, AnomalyKind::kLatencyShortTerm, score});
        }
      }
      st.lookback.push_back(feature);
      while (st.lookback.size() > cfg_.lookback_windows) {
        st.lookback.pop_front();
      }
    }
  }
  st.short_start.reset();
  st.short_rtts.clear();
  st.short_sent = 0;
  st.short_lost = 0;
}

void AnomalyDetector::close_long_window(const EndpointPair& pair,
                                        PairState& st, SimTime at,
                                        std::vector<AnomalyEvent>& events) {
  if (st.long_rtts.size() >= cfg_.min_samples_per_window) {
    if (!st.baseline) {
      // First complete window: fit the log-normal baseline (time T of
      // Figure 14).
      st.baseline = ml::fit_lognormal(st.long_rtts);
    } else {
      const auto result = ml::z_test(*st.baseline, st.long_rtts, cfg_.z_alpha);
      const auto window_fit = ml::fit_lognormal(st.long_rtts);
      // Signed: only degradation (upward drift) is a failure; the recovery
      // window after a fault shifts downward and must not re-alarm.
      const double shift = std::exp(window_fit.mu - st.baseline->mu) - 1.0;
      if (result.reject && shift >= cfg_.long_term_min_shift) {
        events.push_back(AnomalyEvent{pair, at, AnomalyKind::kLatencyLongTerm,
                                      std::abs(result.z)});
      }
      // Always re-baseline on the freshest window: a pass tracks legitimate
      // slow change, and after an alarm the detector must adopt the new
      // regime instead of re-alarming every 30 minutes against a stale (or
      // fault-contaminated) fit. Continued drift still re-alarms because
      // each window shifts against its predecessor.
      st.baseline = ml::fit_lognormal(st.long_rtts);
    }
  }
  st.long_start.reset();
  st.long_rtts.clear();
}

std::vector<AnomalyEvent> AnomalyDetector::flush(SimTime now) {
  std::vector<AnomalyEvent> events;
  for (auto& [pair, st] : pairs_) {
    if (st.short_start) close_short_window(pair, st, now, events);
    if (st.long_start) close_long_window(pair, st, now, events);
  }
  return events;
}

}  // namespace skh::core
