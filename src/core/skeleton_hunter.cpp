#include "core/skeleton_hunter.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "common/flat_table.h"
#include "common/logging.h"
#include "core/forensic.h"

namespace skh::core {

namespace {

std::string pair_label(const EndpointPair& p) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "c%u/r%u -> c%u/r%u",
                p.src.container.value(), p.src.rnic.value(),
                p.dst.container.value(), p.dst.rnic.value());
  return buf;
}

// Config coupling: a non-static routing mode only makes sense with per-path
// sub-series in the detector (the member-scoped evidence the localizer's
// path votes consume), so force track_paths on before anything is built
// from the config.
SkeletonHunterConfig effective_config(SkeletonHunterConfig cfg) {
  if (cfg.engine.routing_mode != topo::RoutingMode::kStaticEcmp) {
    cfg.detector.track_paths = true;
  }
  return cfg;
}

}  // namespace

std::string_view to_string(CaseClass c) noexcept {
  switch (c) {
    case CaseClass::kProbePlane: return "probe-plane";
    case CaseClass::kTenantVisibleNetworkSilent: return "network-silent";
  }
  return "unknown";
}

SkeletonHunter::SkeletonHunter(const topo::Topology& topo,
                               overlay::OverlayNetwork& overlay,
                               cluster::Orchestrator& orchestrator,
                               sim::EventQueue& events,
                               const sim::FaultInjector& faults,
                               RngStream rng, SkeletonHunterConfig cfg)
    : topo_(topo), overlay_(overlay), orch_(orchestrator), events_(events),
      cfg_(effective_config(std::move(cfg))),
      engine_(topo, overlay, faults, rng.fork("engine"), cfg_.engine),
      shard_pool_(cfg_.analyzer_shards > 1
                      ? std::make_unique<common::ThreadPool>(std::min(
                            cfg_.analyzer_shards,
                            std::max<std::size_t>(
                                1, std::thread::hardware_concurrency())))
                      : nullptr),
      detector_(cfg_.detector,
                std::max<std::size_t>(1, cfg_.analyzer_shards),
                shard_pool_.get()),
      oracle_(faults, rng.fork("oracle")),
      localizer_(topo, overlay, oracle_, faults, cfg_.localizer),
      telemetry_(cfg_.telemetry, rng.fork("telemetry")) {
  // cfg_ is a by-value member, so its telemetry plan outlives the localizer.
  localizer_.attach_telemetry(&cfg_.telemetry,
                              rng.fork("traceroute-telemetry"));
  if (cfg_.auto_blacklist) {
    orch_.set_placement_filter([this](HostId host) {
      return blacklist_.host_schedulable(host,
                                         topo_.config().rails_per_host);
    });
  }
  orch_.on_container_created(
      [this](const cluster::ContainerInfo& ci) { on_created(ci); });
  orch_.on_container_running(
      [this](const cluster::ContainerInfo& ci) { on_running(ci); });
  orch_.on_container_stopped(
      [this](const cluster::ContainerInfo& ci) { on_stopped(ci); });
  orch_.on_container_churn(
      [this](const cluster::ContainerInfo& ci,
             cluster::Orchestrator::ChurnReason reason) {
        on_churn(ci, reason);
      });
}

void SkeletonHunter::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  engine_.attach_obs(ctx);
  detector_.attach_obs(ctx);
  localizer_.attach_obs(ctx);
  telemetry_.attach_obs(ctx);
  if (ctx == nullptr) {
    m_cases_opened_ = {};
    m_cases_closed_ = {};
    m_cases_suppressed_ = {};
    m_ticks_ = {};
    m_churn_events_ = {};
    m_replans_ = {};
    m_active_agents_ = {};
    m_degraded_tasks_ = {};
    m_restores_ = {};
    m_flap_rebans_ = {};
    m_coll_steps_ = {};
    m_coll_hangs_ = {};
    m_coll_slows_ = {};
    m_coll_agreements_ = {};
    m_coll_silent_cases_ = {};
    m_coll_absorbed_ = {};
    recorder_ = nullptr;
    h_window_residence_s_ = {};
    h_detect_s_ = {};
    h_localize_s_ = {};
    h_verdict_s_ = {};
    return;
  }
  recorder_ = ctx->recorder.enabled() ? &ctx->recorder : nullptr;
  if (recorder_ != nullptr) recorder_->reserve_pairs(detector_.pair_count());
  auto& r = ctx->registry;
  m_cases_opened_ = r.bind_counter(r.counter_id("hunter.cases_opened"));
  m_cases_closed_ = r.bind_counter(r.counter_id("hunter.cases_closed"));
  m_cases_suppressed_ =
      r.bind_counter(r.counter_id("hunter.cases_suppressed"));
  m_ticks_ = r.bind_counter(r.counter_id("hunter.ticks"));
  m_churn_events_ = r.bind_counter(r.counter_id("hunter.churn_events"));
  m_replans_ = r.bind_counter(r.counter_id("hunter.replans"));
  m_active_agents_ = r.bind_gauge(r.gauge_id("hunter.active_agents"));
  m_degraded_tasks_ = r.bind_gauge(r.gauge_id("hunter.degraded_tasks"));
  m_restores_ = r.bind_counter(r.counter_id("hunter.analyzer_restores"));
  m_flap_rebans_ =
      r.bind_counter(r.counter_id("hunter.blacklist_flap_rebans"));
  m_coll_steps_ = r.bind_counter(r.counter_id("collective.steps_ingested"));
  m_coll_hangs_ = r.bind_counter(r.counter_id("collective.verdicts_hang"));
  m_coll_slows_ = r.bind_counter(r.counter_id("collective.verdicts_slow"));
  m_coll_agreements_ =
      r.bind_counter(r.counter_id("collective.agreements"));
  m_coll_silent_cases_ =
      r.bind_counter(r.counter_id("collective.cases_network_silent"));
  m_coll_absorbed_ =
      r.bind_counter(r.counter_id("collective.cases_absorbed"));
  // Ingest-to-verdict latency plane, stages 2-5. Bucket sets are small on
  // purpose: a handful of bounds keeps the per-observation cost a short
  // linear scan, protecting the <1% overhead gate.
  static constexpr double kResidenceBounds[] = {5.0,   15.0,  30.0,  60.0,
                                                300.0, 900.0, 1800.0, 3600.0};
  static constexpr double kDetectBounds[] = {0.5, 1.0, 2.0, 5.0, 10.0, 30.0};
  static constexpr double kLocalizeBounds[] = {30.0,  60.0,  90.0, 120.0,
                                               300.0, 600.0, 1800.0};
  static constexpr double kVerdictBounds[] = {60.0,  120.0, 180.0, 300.0,
                                              600.0, 1800.0, 3600.0};
  h_window_residence_s_ = r.bind_histogram(
      r.histogram_id("latency.window_residence_s", kResidenceBounds));
  h_detect_s_ =
      r.bind_histogram(r.histogram_id("latency.detect_s", kDetectBounds));
  h_localize_s_ =
      r.bind_histogram(r.histogram_id("latency.localize_s", kLocalizeBounds));
  h_verdict_s_ = r.bind_histogram(
      r.histogram_id("latency.ingest_to_verdict_s", kVerdictBounds));
}

std::uint32_t SkeletonHunter::rank_of(const Endpoint& ep) const {
  const auto& ci = orch_.container(ep.container);
  for (std::uint32_t i = 0; i < ci.rnics.size(); ++i) {
    if (ci.rnics[i] == ep.rnic) return i;
  }
  return 0;
}

void SkeletonHunter::monitor_task(TaskId task) {
  TaskMonitor m;
  m.active = true;
  m.endpoints = orch_.endpoints_of_task(task);
  // Preload: the basic (rail-pruned) ping list, computed before any
  // container of the task has even started.
  m.current_list = basic_ping_list(
      m.endpoints, [this](const Endpoint& ep) { return rank_of(ep); });
  monitors_[task] = std::move(m);
  distribute_list(task);
}

void SkeletonHunter::distribute_list(TaskId task) {
  const auto& m = monitors_.at(task);
  // Plan-time capacity for the detector's flat pair table: the list being
  // distributed fixes the pair population this task will probe, so size
  // the table now and ingest performs zero rehashes. Upper bound (already-
  // mapped pairs re-listed here count twice) — over-reserving only costs
  // slack slots, under-reserving would cost a rebuild on the hot path.
  detector_.reserve_pairs(detector_.pair_count() + m.current_list.size());
  // The recorder mirrors the detector's reservation so steady-state
  // window recording never allocates.
  if (recorder_ != nullptr) {
    recorder_->reserve_pairs(detector_.pair_count() + m.current_list.size());
  }
  for (ContainerId cid : orch_.task(task).containers) {
    const auto it = agents_.find(cid);
    if (it == agents_.end()) continue;
    std::vector<EndpointPair> slice;
    for (const auto& p : m.current_list) {
      if (p.src.container == cid) slice.push_back(p);
    }
    it->second.replace_ping_list(std::move(slice));
  }
}

void SkeletonHunter::spawn_agent(const cluster::ContainerInfo& ci) {
  const auto mit = monitors_.find(ci.task);
  if (mit == monitors_.end() || !mit->second.active) return;
  if (agents_.contains(ci.id)) return;
  probe::Agent agent{ci.id, ci.endpoints()};
  std::vector<EndpointPair> slice;
  for (const auto& p : mit->second.current_list) {
    if (p.src.container == ci.id) slice.push_back(p);
  }
  agent.set_ping_list(std::move(slice));
  if (!cfg_.incremental_activation) {
    // Ablation: activate every target immediately, as a naive Pingmesh
    // would — probes race container startup and raise false alarms.
    for (ContainerId peer : orch_.task(ci.task).containers) {
      if (peer != ci.id) agent.activate_destination(peer);
    }
  } else {
    // Activate targets whose destination containers already registered.
    for (ContainerId peer : orch_.task(ci.task).containers) {
      if (peer == ci.id) continue;
      if (orch_.container(peer).state == cluster::ContainerState::kRunning) {
        agent.activate_destination(peer);
      }
    }
  }
  agents_.emplace(ci.id, std::move(agent));
}

void SkeletonHunter::on_created(const cluster::ContainerInfo& ci) {
  // Without registration gating the sidecar starts probing at creation.
  if (!cfg_.incremental_activation) spawn_agent(ci);
}

void SkeletonHunter::on_running(const cluster::ContainerInfo& ci) {
  const auto mit = monitors_.find(ci.task);
  if (mit == monitors_.end() || !mit->second.active) return;
  spawn_agent(ci);
  // Registration: this container is ready to be pinged; peers activate it.
  if (cfg_.incremental_activation) {
    for (ContainerId peer : orch_.task(ci.task).containers) {
      if (peer == ci.id) continue;
      const auto it = agents_.find(peer);
      if (it != agents_.end()) it->second.activate_destination(ci.id);
    }
  }
}

void SkeletonHunter::on_stopped(const cluster::ContainerInfo& ci) {
  const auto mit = monitors_.find(ci.task);
  if (mit == monitors_.end()) return;
  // Deregistration: peers stop probing this container (teardown is not a
  // connectivity failure).
  for (ContainerId peer : orch_.task(ci.task).containers) {
    if (peer == ci.id) continue;
    const auto it = agents_.find(peer);
    if (it != agents_.end()) it->second.deactivate_destination(ci.id);
  }
  agents_.erase(ci.id);
  // Entire task done? Stop monitoring.
  const auto& task = orch_.task(ci.task);
  const bool any_running = std::any_of(
      task.containers.begin(), task.containers.end(), [this](ContainerId c) {
        return orch_.container(c).state == cluster::ContainerState::kRunning;
      });
  if (!any_running && task.terminated) {
    if (mit->second.degraded) {
      mit->second.degraded = false;
      m_degraded_tasks_.add(-1.0);
    }
    mit->second.active = false;
  }
}

void SkeletonHunter::on_churn(const cluster::ContainerInfo& ci,
                              cluster::Orchestrator::ChurnReason reason) {
  const auto mit = monitors_.find(ci.task);
  if (mit == monitors_.end() || !mit->second.active) return;
  m_churn_events_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("hunter", "churn", events_.now(), ci.id.value(),
                         static_cast<std::uint64_t>(reason));
  }
  SKH_LOG_INFO("skeleton-hunter", "churn on container ", ci.id.value(),
               " (task ", ci.task.value(), "); degrading to basic list");
  degrade_to_basic(ci.task);
}

void SkeletonHunter::degrade_to_basic(TaskId task) {
  auto& m = monitors_.at(task);
  // Refresh the endpoint set from the orchestrator: a migration rebinds the
  // victim's RNICs and a crash removes its container for good. Dead
  // containers drop out of the plan entirely — their skeleton pairs are the
  // ones the churn invalidated.
  m.endpoints.clear();
  for (ContainerId cid : orch_.task(task).containers) {
    const auto& ci = orch_.container(cid);
    if (ci.state == cluster::ContainerState::kDead) continue;
    const auto eps = ci.endpoints();
    m.endpoints.insert(m.endpoints.end(), eps.begin(), eps.end());
  }
  // Detector pairs whose endpoints vanished with the churn (a dead
  // container, or a migration victim's old RNIC binding) can never be
  // probed again: retire them so the analyzer recycles their slots once
  // their final windows have been judged at flush. Retirement only parks —
  // a straggling in-flight result still lands on the retained state.
  {
    std::unordered_set<Endpoint> alive(m.endpoints.begin(),
                                       m.endpoints.end());
    std::vector<EndpointPair> vanished;
    detector_.for_each_pair([&](const EndpointPair& p) {
      if (orch_.container(p.src.container).task != task) return;
      if (!alive.contains(p.src) || !alive.contains(p.dst)) {
        vanished.push_back(p);
      }
    });
    for (const EndpointPair& p : vanished) detector_.retire_pair(p);
  }
  m.current_list = basic_ping_list(
      m.endpoints, [this](const Endpoint& ep) { return rank_of(ep); });
  m.skeleton_applied = false;
  if (!m.degraded) {
    m.degraded = true;
    m_degraded_tasks_.add(1.0);
  }
  // Pre-churn observations describe a traffic pattern that may no longer
  // exist; only batches supplied after this instant count toward
  // re-inference.
  m.fresh_counts.clear();
  m.fresh_obs.clear();
  m_replans_.inc();
  distribute_list(task);
}

bool SkeletonHunter::task_degraded(TaskId task) const {
  const auto mit = monitors_.find(task);
  return mit != monitors_.end() && mit->second.degraded;
}

std::optional<InferredSkeleton> SkeletonHunter::supply_observations(
    TaskId task, const std::vector<EndpointObservation>& obs) {
  const auto mit = monitors_.find(task);
  if (mit == monitors_.end() || !mit->second.active) return std::nullopt;
  if (!cfg_.use_skeleton) return std::nullopt;
  auto& m = mit->second;
  if (!m.degraded) return try_apply_skeleton(task, obs);

  // Degraded mode: accumulate fresh evidence until every live endpoint has
  // enough batches, then re-infer through the same fidelity gate.
  for (const auto& o : obs) {
    ++m.fresh_counts[o.endpoint];
    m.fresh_obs[o.endpoint] = o;
  }
  bool ready = !m.endpoints.empty();
  for (const Endpoint& ep : m.endpoints) {
    const auto it = m.fresh_counts.find(ep);
    if (it == m.fresh_counts.end() ||
        it->second < cfg_.reinference_min_samples) {
      ready = false;
      break;
    }
  }
  if (!ready) return std::nullopt;
  std::vector<EndpointObservation> fresh;
  fresh.reserve(m.endpoints.size());
  for (const Endpoint& ep : m.endpoints) fresh.push_back(m.fresh_obs.at(ep));
  auto inferred = try_apply_skeleton(task, fresh);
  m.fresh_counts.clear();
  m.fresh_obs.clear();
  if (!inferred) {
    // Failed re-inference: stay degraded, restart the accumulation epoch.
    return std::nullopt;
  }
  m.degraded = false;
  m_degraded_tasks_.add(-1.0);
  if (obs_ != nullptr) {
    obs_->tracer.instant("hunter", "reinference", events_.now(),
                         task.value(), inferred->pairs.size());
  }
  return inferred;
}

std::optional<InferredSkeleton> SkeletonHunter::try_apply_skeleton(
    TaskId task, const std::vector<EndpointObservation>& obs) {
  const auto mit = monitors_.find(task);
  auto inferred = infer_skeleton(obs, cfg_.inference);
  if (!inferred) {
    SKH_LOG_WARN("skeleton-hunter", "inference infeasible for task ",
                 task.value(), "; keeping basic ping list");
    return std::nullopt;
  }
  if (cfg_.validate_fidelity) {
    const auto fidelity = validate_skeleton(inferred->pairs, obs,
                                            cfg_.fidelity);
    if (!fidelity.acceptable(cfg_.fidelity)) {
      SKH_LOG_WARN("skeleton-hunter", "skeleton fidelity ", fidelity.score,
                   " below threshold for task ", task.value(),
                   "; keeping basic ping list");
      return std::nullopt;
    }
  }
  mit->second.current_list = skeleton_ping_list(inferred->pairs);
  mit->second.skeleton_applied = true;
  distribute_list(task);
  return inferred;
}

void SkeletonHunter::start(SimTime end) {
  end_ = end;
  if (started_) return;
  started_ = true;
  events_.schedule_after(cfg_.probe_interval, [this] { tick(); });
}

void SkeletonHunter::tick() {
  const SimTime now = events_.now();
  m_ticks_.inc();
  m_active_agents_.set(static_cast<double>(agents_.size()));
  // Blackout transitions. Entering: checkpoint then destroy the analyzer
  // state, as a real process crash would. Leaving: warm-restart from the
  // checkpoint — open cases resume with their windows and streaks intact,
  // so an in-flight incident is neither double-counted nor lost.
  const bool blackout = telemetry_.blackout_at(now);
  if (blackout && !in_blackout_) {
    blackout_snapshot_ = std::make_unique<Snapshot>(checkpoint());
    cold_reset_analyzer();
    in_blackout_ = true;
    if (obs_ != nullptr) {
      obs_->tracer.instant("hunter", "analyzer.blackout", now, ticks_, 0);
    }
  } else if (!blackout && in_blackout_) {
    restore(*blackout_snapshot_);
    blackout_snapshot_.reset();
    in_blackout_ = false;
    last_restore_ = now;
    ++restores_;
    m_restores_.inc();
    for (auto& c : cases_) {
      if (!c.closed) {
        c.timeline.add(now, "analyzer.restore",
                       "warm restart from blackout checkpoint; case resumed");
      }
    }
    if (obs_ != nullptr) {
      obs_->tracer.instant("hunter", "analyzer.restore", now, ticks_,
                           cases_.size());
    }
  }
  // Probe: every agent runs its round regardless of analyzer health (the
  // sidecars are separate processes). The round then crosses the telemetry
  // channel; only what the channel delivers reaches the analyzer's result
  // store and the anomaly detector.
  scratch_.clear();
  std::vector<probe::ProbeResult> round;
  for (auto& [cid, agent] : agents_) {
    auto results = agent.run_round(engine_, now, scratch_);
    round.insert(round.end(), results.begin(), results.end());
  }
  if (!in_blackout_) {
    telemetry_.transmit(round, now);
    // Route the round once on this thread (collector + global handles),
    // then fan the detector work across the analyzer shards. The batch
    // returns events grouped by originating result in round order — the
    // exact sequence sequential single-detector ingest produces — so the
    // per-task buckets below are shard-count-invariant.
    batch_.clear();
    batch_.reserve(round.size());
    for (const auto& result : round) {
      collector_.ingest(result);
      batch_.push_back(ShardedDetector::BatchItem{
          detector_.handle_of(result.pair), result.seq, result.sent_at,
          result.delivered, result.rtt_us, result.path_id});
    }
    detector_.ingest_batch(batch_, batch_events_, batch_fired_);
    drain_windows();
    std::map<TaskId, std::vector<AnomalyEvent>> per_task_events;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < round.size(); ++i) {
      const std::uint32_t fired = batch_fired_[i];
      if (fired > 0) {
        const TaskId task = orch_.container(round[i].pair.src.container).task;
        auto& bucket = per_task_events[task];
        bucket.insert(bucket.end(), batch_events_.begin() + cursor,
                      batch_events_.begin() + cursor + fired);
      }
      cursor += fired;
    }
    for (auto& [task, evts] : per_task_events) {
      route_events(task, std::move(evts));
    }
    // Close quiet cases; drop the ones suppressed as transients. Quiet is
    // measured in *observed* time: the span of a blackout (before
    // last_restore_) is not evidence of silence.
    for (auto& c : cases_) {
      if (!c.closed &&
          now - std::max(c.last_event, last_restore_) >=
              cfg_.case_quiet_period) {
        close_case(c);
      }
    }
    std::erase_if(cases_, [](const FailureCase& c) { return c.suppressed; });
  }
  // Bound collector memory: anomaly windows never look back further than
  // the long-term window.
  if (++ticks_ % 512 == 0) {
    collector_.trim_before(now - cfg_.detector.long_window * 2.0);
  }
  if (now + cfg_.probe_interval <= end_) {
    events_.schedule_after(cfg_.probe_interval, [this] { tick(); });
  }
}

SkeletonHunter::Snapshot SkeletonHunter::checkpoint() const {
  Snapshot s;
  s.detector_ = detector_.snapshot();
  s.collector_ = collector_;
  s.cases_ = cases_;
  s.blacklist_ = blacklist_;
  s.monitors_ = monitors_;
  s.collective_ = collective_;
  s.ticks_ = ticks_;
  return s;
}

void SkeletonHunter::restore(const Snapshot& snap) {
  detector_.restore(snap.detector_);
  collector_ = snap.collector_;
  cases_ = snap.cases_;
  blacklist_ = snap.blacklist_;
  monitors_ = snap.monitors_;
  collective_ = snap.collective_;
  ticks_ = snap.ticks_;
}

void SkeletonHunter::cold_reset_analyzer() {
  // Publish what the dying analyzer already counted — process telemetry is
  // not analysis state and must survive the reset.
  detector_.sync_obs();
  detector_ = ShardedDetector(cfg_.detector,
                              std::max<std::size_t>(1, cfg_.analyzer_shards),
                              shard_pool_.get());
  detector_.attach_obs(obs_);
  collector_.clear();
  cases_.clear();
  blacklist_ = Blacklist{};
  // Collective diagnosis state (strikes, latches, pending hangs) dies with
  // the process; the communicator registrations survive like monitors_ —
  // they came from the control plane, not from analysis.
  for (auto& [task, plane] : collective_) plane.diag.reset_state();
}

void SkeletonHunter::route_events(TaskId task,
                                  std::vector<AnomalyEvent> events) {
  // Order-independent case reducer: sort the batch into the canonical
  // (detected_at, pair, kind, score) order before any open/merge/suppress
  // decision. Whatever sharding or interleaving produced this batch, the
  // same event set reduces to the same cases with the same first_event —
  // the keystone of shard-count-invariant verdicts (and chronologically
  // the right case-open attribution regardless).
  canonicalize_events(events);
  const SimTime now = events_.now();
  std::vector<std::uint32_t> opened;  ///< cases opened by this batch
  for (const auto& e : events) {
    // A long-term (30-minute-window) alarm that merely re-reports a pair
    // already covered by a recent case is the windowing tail of that
    // incident, not a new failure; merging it would glue unrelated
    // incidents together and dilute the localization vote.
    if (e.kind == AnomalyKind::kLatencyLongTerm) {
      const bool redundant = std::any_of(
          cases_.begin(), cases_.end(), [&](const FailureCase& c) {
            return c.task == task &&
                   e.detected_at - c.last_event <=
                       cfg_.detector.long_window * 2.0 &&
                   c.pairs.contains(e.pair);
          });
      if (redundant) continue;
    }
    // Aggregate by task and time window (the production analyzer indexes
    // results by task/container/RNIC/uplink, §6): one failing component
    // degrades many pairs at once — e.g. a ToR takes out pairs that share
    // no endpoint — and splitting them would also starve the tomography
    // voter of intersection evidence.
    FailureCase* target = nullptr;
    for (auto& c : cases_) {
      if (c.closed || c.task != task) continue;
      // Like the quiet-period check, merging clocks against observed time:
      // a case that went dark only because the analyzer was dead still
      // absorbs the incident's post-restore events.
      if (now - std::max(c.last_event, last_restore_) >
          cfg_.case_merge_window) {
        continue;
      }
      target = &c;
      break;
    }
    if (target == nullptr) {
      FailureCase c;
      c.id = static_cast<std::uint32_t>(cases_.size());
      c.task = task;
      c.first_event = e.detected_at;
      c.last_event = e.detected_at;
      c.timeline.add(e.detected_at, "case.open",
                     "first anomalous window on " + pair_label(e.pair));
      cases_.push_back(std::move(c));
      target = &cases_.back();
      m_cases_opened_.inc();
      if (obs_ != nullptr) {
        obs_->tracer.instant("hunter", "case.open", e.detected_at, target->id,
                             task.value());
      }
      opened.push_back(target->id);
    }
    target->pairs.insert(e.pair);
    target->events.push_back(e);
    // Stage 4 of the latency plane: detection-to-routing lag (a window
    // closing mid-round surfaces here on the same tick; the lag is the
    // intra-tick remainder).
    h_detect_s_.observe((now - e.detected_at).to_seconds());
    if (recorder_ != nullptr) {
      recorder_->record_event(obs::EventRecord{
          e.pair, e.detected_at, e.score, static_cast<std::uint8_t>(e.kind)});
    }
    target->timeline.add(e.detected_at, "anomaly",
                         std::string(to_string(e.kind)) + " on " +
                             pair_label(e.pair),
                         e.score);
    target->last_event = std::max(target->last_event, e.detected_at);
  }
  // Every case open emits a forensic bundle (self-contained JSON of the
  // evidence so far); close_case re-emits with the verdict attached. Done
  // after the batch so the open bundle covers the whole opening round.
  for (const std::uint32_t id : opened) {
    for (const auto& c : cases_) {
      if (c.id == id) {
        emit_bundle(c);
        break;
      }
    }
  }
}

void SkeletonHunter::register_collectives(
    TaskId task, const std::vector<workload::CollectiveGroup>& gs) {
  CollectivePlane plane;
  plane.diag = collective::CollectiveDiagnoser(cfg_.collective);
  for (const auto& g : gs) plane.diag.register_group(g);
  plane.groups = gs;
  collective_[task] = std::move(plane);
}

void SkeletonHunter::ingest_collective_steps(
    TaskId task, std::span<const workload::StepRecord> records) {
  // The analyzer process consumes this plane too: during a blackout the
  // step reports are lost with it, exactly like probe results.
  if (in_blackout_) return;
  const auto it = collective_.find(task);
  if (it == collective_.end()) return;
  m_coll_steps_.add(records.size());
  verdict_scratch_.clear();
  it->second.diag.ingest(records, events_.now(), verdict_scratch_);
  for (const auto& v : verdict_scratch_) {
    if (v.kind == collective::VerdictKind::kHang) {
      m_coll_hangs_.inc();
    } else {
      m_coll_slows_.inc();
    }
    route_collective_verdict(task, v);
  }
}

std::uint64_t SkeletonHunter::collective_steps() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [task, plane] : collective_) {
    total += plane.diag.steps_ingested();
  }
  return total;
}

std::uint64_t SkeletonHunter::collective_verdicts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [task, plane] : collective_) {
    total += plane.diag.hang_verdicts() + plane.diag.slow_verdicts();
  }
  return total;
}

void SkeletonHunter::route_collective_verdict(
    TaskId task, const collective::CollectiveVerdict& v) {
  const SimTime now = events_.now();
  // Containers the verdict implicates: the stall root plus its wait-for
  // chain.
  auto implicates = [&](const EndpointPair& p) {
    if (p.src.container == v.root.container ||
        p.dst.container == v.root.container) {
      return true;
    }
    for (const auto& w : v.waiters) {
      if (p.src.container == w.container || p.dst.container == w.container) {
        return true;
      }
    }
    return false;
  };
  // Cross-plane agreement: an open probe case on the same task whose pairs
  // touch the implicated containers. Both planes seeing the same incident
  // is the strongest evidence either can get — the verdict attaches as
  // corroboration and raises the case's confidence at close.
  for (auto& c : cases_) {
    if (c.closed || c.task != task || c.cls != CaseClass::kProbePlane) {
      continue;
    }
    if (now - std::max(c.last_event, last_restore_) > cfg_.case_merge_window) {
      continue;
    }
    if (!std::any_of(c.pairs.begin(), c.pairs.end(), implicates)) continue;
    ++c.collective_agreements;
    c.collective_evidence.push_back(v);
    m_coll_agreements_.inc();
    c.timeline.add(now, "collective.corroborate",
                   std::string(to_string(v.kind)) + " verdict on container " +
                       std::to_string(v.root.container.value()) +
                       " agrees with probe plane",
                   v.severity);
    if (obs_ != nullptr) {
      obs_->tracer.instant("hunter", "collective.corroborate", now, c.id,
                           v.root.container.value());
    }
    return;
  }
  // Disagreement: the probe plane sees nothing. Open (or merge into) a
  // tenant-visible-but-network-silent case.
  for (auto& c : cases_) {
    if (c.closed || c.task != task ||
        c.cls != CaseClass::kTenantVisibleNetworkSilent) {
      continue;
    }
    if (now - std::max(c.last_event, last_restore_) > cfg_.case_merge_window) {
      continue;
    }
    c.collective_evidence.push_back(v);
    c.last_event = std::max(c.last_event, now);
    c.timeline.add(now, "collective.verdict",
                   std::string(to_string(v.kind)) + " on container " +
                       std::to_string(v.root.container.value()),
                   v.severity);
    return;
  }
  FailureCase c;
  c.id = static_cast<std::uint32_t>(cases_.size());
  c.task = task;
  c.cls = CaseClass::kTenantVisibleNetworkSilent;
  c.first_event = now;
  c.last_event = now;
  c.collective_evidence.push_back(v);
  c.timeline.add(now, "case.open",
                 "collective " + std::string(to_string(v.kind)) +
                     " on container " +
                     std::to_string(v.root.container.value()) +
                     " with zero probe-plane symptoms",
                 v.severity);
  cases_.push_back(std::move(c));
  m_cases_opened_.inc();
  m_coll_silent_cases_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("hunter", "case.open_network_silent", now,
                         cases_.back().id, task.value());
  }
  emit_bundle(cases_.back());
}

void SkeletonHunter::close_collective_case(FailureCase& c) {
  // A probe-plane case on the same task that overlaps this one in time and
  // touches an implicated container means the incident was network-visible
  // after all; a second ticket would double-page. Absorb this case and move
  // its verdicts onto the probe case as cross-plane agreements — this is
  // the verdict-before-probe-window order (the collective plane detects a
  // dead RNIC's hang within one iteration; the anomaly detector needs a
  // full window), which route_collective_verdict cannot corroborate because
  // the probe case did not exist yet.
  auto implicated = [](const FailureCase& other,
                       const collective::CollectiveVerdict& v) {
    for (const auto& p : other.pairs) {
      if (p.src.container == v.root.container ||
          p.dst.container == v.root.container) {
        return true;
      }
      for (const auto& w : v.waiters) {
        if (p.src.container == w.container || p.dst.container == w.container) {
          return true;
        }
      }
    }
    return false;
  };
  for (auto& other : cases_) {
    if (other.id == c.id || other.task != c.task) continue;
    if (other.cls != CaseClass::kProbePlane) continue;
    if (c.first_event > other.last_event + cfg_.case_merge_window ||
        other.first_event > c.last_event + cfg_.case_merge_window) {
      continue;
    }
    std::size_t adopted = 0;
    for (const auto& v : c.collective_evidence) {
      if (!implicated(other, v)) continue;
      other.collective_evidence.push_back(v);
      ++other.collective_agreements;
      ++adopted;
    }
    if (adopted == 0) continue;
    m_coll_agreements_.add(adopted);
    other.timeline.add(c.closed_at, "collective.corroborate",
                       std::to_string(adopted) +
                           " verdict(s) adopted from absorbed "
                           "network-silent case",
                       static_cast<double>(adopted));
    if (other.closed) {
      // The probe case already closed without the bonus; apply it now and
      // refresh its bundle so the ticket reflects the confirmation.
      other.localization.confidence = std::min(
          1.25, other.localization.confidence + cfg_.corroboration_bonus);
      emit_bundle(other);
    }
    c.suppressed = true;
    m_cases_suppressed_.inc();
    m_coll_absorbed_.inc();
    c.timeline.add(c.closed_at, "case.absorb",
                   "probe plane saw the same incident; evidence attached "
                   "to its case");
    return;
  }
  // Transient filtering, same spirit as the probe plane: a single slow
  // verdict with no hang is one noisy host interval, not a ticket.
  if (c.collective_evidence.size() < 2 &&
      c.collective_evidence.front().kind == collective::VerdictKind::kSlow &&
      c.collective_evidence.front().severity < 8.0) {
    c.suppressed = true;
    m_cases_suppressed_.inc();
    c.timeline.add(c.closed_at, "case.suppress",
                   "single mild slow verdict: transient host noise");
    return;
  }
  // Localization from the verdict chain: the stall root's container and
  // host are the culprits; the wait-for chain contributes weak votes (it
  // is implicated, not guilty — Mycroft's distinction).
  const auto& root_verdict = c.collective_evidence.front();
  Localization loc;
  loc.method = LocalizationMethod::kCollectiveChain;
  loc.confidence = 1.0;
  const sim::ComponentRef root_container{
      sim::ComponentKind::kContainer, root_verdict.root.container.value()};
  loc.culprits.push_back(root_container);
  loc.votes.push_back({root_container, 1.0, "collective-root"});
  const auto host = topo_.host_of(root_verdict.root.rnic);
  const sim::ComponentRef host_ref{sim::ComponentKind::kHost, host.value()};
  loc.culprits.push_back(host_ref);
  loc.votes.push_back({host_ref, 0.5, "collective-root-host"});
  std::set<std::uint32_t> chain_seen{root_verdict.root.container.value()};
  for (const auto& v : c.collective_evidence) {
    for (const auto& w : v.waiters) {
      if (!chain_seen.insert(w.container.value()).second) continue;
      loc.votes.push_back(
          {{sim::ComponentKind::kContainer, w.container.value()},
           0.25,
           "collective-wait-chain"});
    }
  }
  c.localization = std::move(loc);
  if (recorder_ != nullptr) {
    for (const auto& v : c.localization.votes) {
      recorder_->record_vote(obs::VoteRecord{
          c.id, static_cast<std::uint8_t>(v.component.kind),
          v.component.index, static_cast<float>(v.weight), v.source});
    }
  }
  c.timeline.add(c.closed_at, "localize",
                 std::string(to_string(c.localization.method)),
                 static_cast<double>(c.localization.culprits.size()));
  c.timeline.add(c.closed_at, "case.close",
                 "network-silent ticket routed to tenant/host owners");
  if (obs_ != nullptr) {
    obs_->tracer.instant("hunter", "case.close", c.closed_at, c.id,
                         c.localization.culprits.size());
  }
  // No auto-blacklist: a hung or slow host is a tenant/host-plane issue;
  // banning network components on collective evidence alone would let the
  // second plane pollute the first plane's placement filter.
  emit_bundle(c);
}

void SkeletonHunter::close_case(FailureCase& c) {
  c.closed = true;
  c.closed_at = events_.now();
  m_cases_closed_.inc();
  if (c.cls == CaseClass::kTenantVisibleNetworkSilent) {
    close_collective_case(c);
    return;
  }
  // Transient filtering (§5.2): a single short-term latency outlier on its
  // own is transient congestion, not a failure case worth a ticket.
  if (c.events.size() < 2 &&
      c.events.front().kind == AnomalyKind::kLatencyShortTerm) {
    c.suppressed = true;
    m_cases_suppressed_.inc();
    c.timeline.add(c.closed_at, "case.suppress",
                   "single short-term outlier: transient congestion");
    return;
  }
  const std::vector<EndpointPair> pairs(c.pairs.begin(), c.pairs.end());
  // Path-scoped evidence: events the detector fired on one specific
  // equal-cost member (per-path sub-series under spray/adaptive routing)
  // become hints that scope their pair's tomography vote to that member's
  // components. Sorted + deduped so the hint set — like the event set it
  // derives from — is shard-count-invariant.
  std::vector<PathScopedAnomaly> hints;
  for (const auto& e : c.events) {
    if (e.path_id == AnomalyEvent::kAnyPath) continue;
    hints.push_back(PathScopedAnomaly{e.pair, e.path_id});
  }
  std::sort(hints.begin(), hints.end(),
            [](const PathScopedAnomaly& a, const PathScopedAnomaly& b) {
              if (a.pair != b.pair) return a.pair < b.pair;
              return a.path_id < b.path_id;
            });
  hints.erase(std::unique(hints.begin(), hints.end(),
                          [](const PathScopedAnomaly& a,
                             const PathScopedAnomaly& b) {
                            return a.pair == b.pair && a.path_id == b.path_id;
                          }),
              hints.end());
  // Localize against the state at the first event: diagnostics (switch
  // logs, config checks) are inspected while the incident is live.
  c.localization = localizer_.localize(pairs, c.first_event, hints);
  // Cross-plane agreement: collective verdicts that implicated this case's
  // containers were attached while it was open. Two independent signal
  // planes naming the same incident is stronger evidence than either
  // alone, so the bonus may push confidence past 1.0 — by design; > 1.0
  // reads as "independently confirmed".
  if (c.collective_agreements > 0) {
    c.localization.confidence =
        std::min(1.25, c.localization.confidence + cfg_.corroboration_bonus);
    c.timeline.add(c.closed_at, "collective.confirm",
                   std::to_string(c.collective_agreements) +
                       " collective verdict(s) corroborate the probe plane",
                   c.localization.confidence);
  }
  // Stages 5 of the latency plane: first event to verdict, and the
  // end-to-end ingest-to-verdict span measured from the *opening* of the
  // first anomalous window (detected_at stamps its close).
  h_localize_s_.observe((c.closed_at - c.first_event).to_seconds());
  h_verdict_s_.observe(
      (c.closed_at - (c.first_event - cfg_.detector.short_window))
          .to_seconds());
  if (recorder_ != nullptr) {
    for (const auto& v : c.localization.votes) {
      recorder_->record_vote(obs::VoteRecord{
          c.id, static_cast<std::uint8_t>(v.component.kind),
          v.component.index, static_cast<float>(v.weight), v.source});
    }
  }
  c.timeline.add(c.closed_at, "localize",
                 std::string(to_string(c.localization.method)),
                 static_cast<double>(c.localization.culprits.size()));
  c.timeline.add(c.closed_at, "confidence",
                 "fraction of consulted evidence that answered",
                 c.localization.confidence);
  c.timeline.add(c.closed_at, "case.close",
                 "quiet for case_quiet_period; ticket filed");
  if (obs_ != nullptr) {
    obs_->tracer.instant("hunter", "case.close", c.closed_at, c.id,
                         c.localization.culprits.size());
  }
  // §8: culprit components are banned from new placements until repaired.
  // A re-ban within hysteresis of the component's repair is the same
  // incident flapping: the ban sticks but the alert is dampened.
  if (cfg_.auto_blacklist) {
    for (const auto& culprit : c.localization.culprits) {
      if (blacklist_.add(culprit, c.closed_at) == BanOutcome::kFlapReban) {
        m_flap_rebans_.inc();
        c.timeline.add(c.closed_at, "blacklist.flap",
                       "re-ban within hysteresis of repair; alert dampened");
      }
    }
  }
  // Finalize the forensic bundle: the open-time emission is replaced by
  // one carrying the verdict, full timeline, and closing vote tally.
  emit_bundle(c);
}

void SkeletonHunter::drain_windows() {
  if (obs_ == nullptr) return;
  window_scratch_.clear();
  detector_.drain_window_log(window_scratch_);
  for (const auto& w : window_scratch_) {
    // Stage 3 of the latency plane: how long a sample batch sat inside its
    // detection window before being judged.
    h_window_residence_s_.observe((w.end - w.start).to_seconds());
    if (recorder_ != nullptr) {
      const auto gid = detector_.find_handle(w.pair);
      if (gid != common::FlatPairTable::kNoSlot) {
        recorder_->record_window(gid, w);
      }
    }
  }
}

void SkeletonHunter::emit_bundle(const FailureCase& c) {
  if (recorder_ == nullptr) return;
  obs::MetricsSnapshot snap;
  const obs::MetricsSnapshot* sp = nullptr;
  if (obs_ != nullptr) {
    snap = obs_->registry.scrape();
    sp = &snap;
  }
  recorder_->store_bundle(c.id,
                          forensic_bundle_json(c, detector_, recorder_, sp));
}

void SkeletonHunter::mark_repaired(sim::ComponentRef ref) {
  blacklist_.clear(ref, events_.now());
}

void SkeletonHunter::opt_out(TaskId task) {
  const auto mit = monitors_.find(task);
  if (mit == monitors_.end()) return;
  mit->second.active = false;
  mit->second.current_list.clear();
  distribute_list(task);
}

void SkeletonHunter::finalize() {
  // A campaign ending mid-blackout still warm-restarts first: the in-flight
  // cases must be localized from the checkpoint, not lost with the dead
  // process.
  if (in_blackout_) {
    restore(*blackout_snapshot_);
    blackout_snapshot_.reset();
    in_blackout_ = false;
    last_restore_ = events_.now();
    ++restores_;
    m_restores_.inc();
  }
  const auto tail_events = detector_.flush(events_.now());
  drain_windows();
  std::map<TaskId, std::vector<AnomalyEvent>> per_task;
  for (const auto& e : tail_events) {
    const TaskId task = orch_.container(e.pair.src.container).task;
    per_task[task].push_back(e);
  }
  for (auto& [task, evts] : per_task) route_events(task, std::move(evts));
  for (auto& c : cases_) {
    if (!c.closed) close_case(c);
  }
  std::erase_if(cases_, [](const FailureCase& c) { return c.suppressed; });
}

std::size_t SkeletonHunter::current_targets(TaskId task) const {
  std::size_t total = 0;
  for (ContainerId cid : orch_.task(task).containers) {
    const auto it = agents_.find(cid);
    if (it != agents_.end()) total += it->second.total_targets();
  }
  return total;
}

}  // namespace skh::core
