// Sharded analyzer scale-out: the pair space partitioned across N
// independent `AnomalyDetector` shards behind a single detector-shaped
// facade.
//
// Why sharding preserves verdicts exactly: every piece of detector state
// (windows, LOF look-back, long-term baseline, sequence tracking) is
// per-pair — the event stream a pair produces is a pure function of that
// pair's ingest sequence. So any partition of the pair space yields the
// same event *set*, provided each pair's probes stay in order. The facade
// guarantees the stronger property the hunter's case tracking needs —
// bit-identical verdicts at 1, 4, or 16 shards — with three invariants:
//
//  1. *Stable global ids.* A router `common::FlatPairTable` assigns every
//     pair a dense global id in discovery order. Discovery order depends
//     only on the probe schedule, never on the shard count, so the id a
//     pair gets (and everything keyed off it) is shard-count-invariant.
//     Placement is consistent-hash on that id (`ShardRing`), so it too is
//     a pure function of (id, shard count).
//  2. *Order-preserving batches.* `ingest_batch` partitions a probe round
//     by shard, preserving round order within each shard (same-pair
//     results always land in the same shard, so per-pair order holds),
//     runs one job per shard on the worker pool, and merges fired events
//     back by original item index — reproducing the exact event sequence
//     a single detector ingesting the round sequentially would emit.
//  3. *Canonical tails.* `flush` closes windows shard by shard (local
//     slot order) and then sorts the merged events with
//     `canonicalize_events`; any shard count sorts the same event set to
//     the same sequence.
//
// Rebalance rides the PR-5 state machinery: `migrate_range` moves a
// global-id range between shards via `AnomalyDetector::extract_pair` /
// `adopt_pair` mid-campaign. The moved pairs continue their windows
// bit-identically (the unit of state is the pair, and it travels whole),
// so a rebalanced campaign's verdicts match an unbalanced one's.
//
// Observability: at 1 shard the facade attaches the context directly to
// its single detector — the legacy single-analyzer path, bit-identical
// including tracer instants. At N > 1 shards each detector keeps a private
// registry (two pool threads must never record into one registry
// unsynchronized); `sync_obs` publishes the summed deltas into the
// attached context at flush / cold-reset so campaign-level scrapes still
// carry the detector.* series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/flat_table.h"
#include "common/pool.h"
#include "core/anomaly.h"
#include "obs/context.h"

namespace skh::core {

/// Consistent-hash ring over shard indices, keyed by stable global pair
/// id. Each shard contributes `vnodes` points (splitmix-derived, so the
/// ring is a pure function of the shard count); a key routes to the owner
/// of the first point at or after its own hash. Pure and deterministic:
/// no RNG, no state beyond the sorted point list.
class ShardRing {
 public:
  ShardRing() : ShardRing(1) {}
  explicit ShardRing(std::size_t n_shards, std::size_t vnodes = 64);

  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept { return n_shards_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::vector<Point> points_;  ///< sorted by hash
  std::size_t n_shards_ = 1;
};

/// Detector-shaped facade over N pair-space shards. Drop-in for
/// `AnomalyDetector` in the hunter: same handle/ingest/retire/flush/
/// snapshot surface, same counters, plus the batch entry point and the
/// rebalance API. N == 1 degenerates to a thin wrapper around one
/// detector (no pool dispatch, direct obs attach).
class ShardedDetector {
 public:
  /// Stable *global* pair id from the router table — shard-count-invariant
  /// (see file header), valid until the pair is recycled at `flush`.
  using GlobalHandle = common::FlatPairTable::SlotId;

  explicit ShardedDetector(DetectorConfig cfg = {}, std::size_t n_shards = 1,
                           common::ThreadPool* pool = nullptr);

  /// One probe observation, pre-routed (`handle` from `handle_of`).
  struct BatchItem {
    GlobalHandle handle = 0;
    std::uint64_t seq = 0;
    SimTime sent_at;
    bool delivered = false;
    double rtt_us = 0.0;
    /// Equal-cost member the probe rode (see ProbeResult::path_id); feeds
    /// the per-path sub-series when `DetectorConfig::track_paths` is on.
    std::uint32_t path_id = 0;
  };

  /// See AnomalyDetector::attach_obs. With one shard the context is
  /// attached directly (legacy path); with several it is retained for
  /// `sync_obs` and the shards keep their private registries.
  void attach_obs(obs::Context* ctx);

  /// Publish the shards' counter deltas into the attached context's
  /// registry (no-op at 1 shard, where the context is attached directly).
  /// Call when quiesced — end of campaign flush, cold reset.
  void sync_obs();

  /// Get-or-create the global handle for a pair; assigns placement for
  /// newly discovered pairs via the ring.
  [[nodiscard]] GlobalHandle handle_of(const EndpointPair& pair);

  /// Find-only lookup: the global handle of a mapped pair, or
  /// `common::FlatPairTable::kNoSlot` if unknown. Never allocates or
  /// assigns placement (forensic/recorder reads).
  [[nodiscard]] GlobalHandle find_handle(const EndpointPair& pair) const {
    return router_.find(pair);
  }

  /// Collect every shard's closed-window log (see
  /// AnomalyDetector::drain_window_log), appended to `out` in canonical
  /// order — sorted by (end, start, pair) — so the drained stream is
  /// shard-count-invariant. Summed drop count via `window_log_drops`.
  void drain_window_log(std::vector<obs::WindowRecord>& out);
  [[nodiscard]] std::uint64_t window_log_drops() const;

  /// Plan-time capacity: sizes the router and divides the expectation
  /// across shards. Growth only.
  void reserve_pairs(std::size_t pairs);

  /// Single-observation ingest (tests, small flows). The batch entry point
  /// below is the campaign hot path. The 7-arg form carries the equal-cost
  /// member id; the 6-arg form stamps path 0.
  std::size_t ingest(GlobalHandle h, std::uint64_t seq, SimTime sent_at,
                     bool delivered, double rtt_us, std::uint32_t path_id,
                     std::vector<AnomalyEvent>& out);
  std::size_t ingest(GlobalHandle h, std::uint64_t seq, SimTime sent_at,
                     bool delivered, double rtt_us,
                     std::vector<AnomalyEvent>& out) {
    return ingest(h, seq, sent_at, delivered, rtt_us, 0, out);
  }

  /// Ingest one probe round. Items are partitioned by shard (round order
  /// preserved within each shard) and ingested with one pool job per
  /// shard; `events` receives every fired event grouped by originating
  /// item in item order — the exact sequence sequential single-detector
  /// ingest would produce — and `fired_per_item[i]` says how many of them
  /// item i contributed. Both outputs are overwritten. Returns the total
  /// number of events fired.
  std::size_t ingest_batch(std::span<const BatchItem> items,
                           std::vector<AnomalyEvent>& events,
                           std::vector<std::uint32_t>& fired_per_item);

  /// See AnomalyDetector::retire_pair.
  void retire_pair(const EndpointPair& pair);

  /// Force-close all open windows on every shard and recycle still-retired
  /// pairs (global ids included). Events are returned in canonical order
  /// (`canonicalize_events`) — identical at any shard count.
  [[nodiscard]] std::vector<AnomalyEvent> flush(SimTime now);

  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Live (mapped) pairs, including retired-but-not-yet-recycled ones.
  [[nodiscard]] std::size_t pair_count() const noexcept {
    return router_.size();
  }
  [[nodiscard]] std::size_t retired_count() const noexcept;
  /// The router table (capacity planning / layout telemetry).
  [[nodiscard]] const common::FlatPairTable& pair_table() const noexcept {
    return router_;
  }
  /// Which shard currently owns a mapped pair (rebalance bookkeeping).
  [[nodiscard]] std::size_t shard_of(GlobalHandle h) const noexcept {
    return shard_of_[h];
  }
  /// Visit every mapped pair as f(pair) — router slot order, deterministic
  /// AND shard-count-invariant (single table, shard placement irrelevant).
  template <typename F>
  void for_each_pair(F&& f) const {
    router_.for_each(
        [&f](const EndpointPair& p, common::FlatPairTable::SlotId) { f(p); });
  }

  /// Summed ingest counters across shards. Rebalance-invariant: the LOF
  /// path counters travel inside each migrated pair's model.
  [[nodiscard]] DetectorCounters counters() const;

  /// Rebalance: move every mapped pair whose global id lies in [lo, hi)
  /// onto shard `to`, mid-campaign, via extract/adopt. Window state moves
  /// whole, so verdicts are unperturbed. Returns pairs moved.
  std::size_t migrate_range(GlobalHandle lo, GlobalHandle hi, std::size_t to);

  /// Opaque copy of the full analysis state: router, placement, and every
  /// shard's snapshot. Same contract as AnomalyDetector::Snapshot —
  /// restore-and-continue is bit-identical to never having stopped.
  /// Restore requires the same shard count (it is config, like the
  /// detector's window geometry).
  class Snapshot;
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  /// Placement of one mapped global id; kUnplaced marks a recycled id.
  static constexpr std::uint32_t kUnplaced = static_cast<std::uint32_t>(-1);

  DetectorConfig cfg_;
  ShardRing ring_;
  common::ThreadPool* pool_ = nullptr;  ///< not owned; may be null
  std::vector<std::unique_ptr<AnomalyDetector>> shards_;
  common::FlatPairTable router_;  ///< pair -> global id, discovery order
  // Dense by global id: owning shard, local handle there, and the pair
  // itself (recycle needs key lookups without re-deriving from shards).
  std::vector<std::uint32_t> shard_of_;
  std::vector<AnomalyDetector::PairHandle> local_of_;
  std::vector<EndpointPair> pair_of_;

  // Reused batch scratch (one entry per shard): item indices, fired
  // events, and per-item fired counts for the merge-by-item-index step.
  std::vector<std::vector<std::size_t>> batch_items_;
  std::vector<std::vector<AnomalyEvent>> batch_events_;
  std::vector<std::vector<std::uint32_t>> batch_fired_;
  std::vector<std::size_t> batch_cursor_item_;
  std::vector<std::size_t> batch_cursor_event_;

  obs::Context* obs_ = nullptr;
  DetectorCounters published_;  ///< registry-series totals already synced

  // Per-shard load/skew accounting for rebalance decisions, published by
  // sync_obs as `detector.shard<i>.*` series (facade-side, so it exists at
  // any shard count). merge-stall = how many item-slots the batch barrier
  // wasted waiting on the most-loaded shard: sum over batches of
  // (max shard items × shards − total items). Zero means perfectly even
  // routing; growth is the data a `migrate_range` decision wants.
  std::vector<std::uint64_t> shard_items_;     ///< batch items routed, per shard
  std::vector<std::uint64_t> batch_counts_;    ///< per-batch scratch
  std::uint64_t merge_stall_items_ = 0;
  std::uint64_t merge_stall_published_ = 0;
  std::vector<std::uint64_t> shard_items_published_;

 public:
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class ShardedDetector;
    std::vector<AnomalyDetector::Snapshot> shards_;
    common::FlatPairTable router_;
    std::vector<std::uint32_t> shard_of_;
    std::vector<AnomalyDetector::PairHandle> local_of_;
    std::vector<EndpointPair> pair_of_;
  };
};

}  // namespace skh::core
