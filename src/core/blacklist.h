// Component blacklist (§8, "Handling Detected Failures").
//
// When SkeletonHunter closes a localized failure case it adds the culprit
// components to a blacklist so that no new training task is scheduled onto
// them until they are repaired. The orchestrator consults the blacklist
// through its placement filter.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "sim/fault.h"

namespace skh::core {

class Blacklist {
 public:
  /// Ban a component from `at` until explicitly cleared.
  void add(sim::ComponentRef ref, SimTime at);
  /// Repair finished: lift the ban.
  void clear(sim::ComponentRef ref);

  [[nodiscard]] bool contains(sim::ComponentRef ref) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::vector<sim::ComponentRef> entries() const;

  /// Is this host schedulable? False when the host itself, its virtual
  /// switch, or any of its RNICs (given `rails_per_host` and the host's
  /// dense RNIC numbering) is blacklisted.
  [[nodiscard]] bool host_schedulable(HostId host,
                                      std::uint32_t rails_per_host) const;

 private:
  std::unordered_map<sim::ComponentRef, SimTime> entries_;
};

}  // namespace skh::core
