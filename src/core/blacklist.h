// Component blacklist (§8, "Handling Detected Failures").
//
// When SkeletonHunter closes a localized failure case it adds the culprit
// components to a blacklist so that no new training task is scheduled onto
// them until they are repaired. The orchestrator consults the blacklist
// through its placement filter.
//
// Flap hysteresis: a port that alternates down/up (kSwitchPortFlapping,
// kRnicPortFlapping) gets blacklisted, repaired, and re-blacklisted in
// quick succession. The first ban is an alert; a re-ban within the
// hysteresis window of its clear is the SAME incident flapping and must
// not page anyone again — the component is still banned, only the alert
// is suppressed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "sim/fault.h"

namespace skh::core {

/// What Blacklist::add did, so the caller can tell a fresh alert from a
/// duplicate or a dampened flap.
enum class BanOutcome : std::uint8_t {
  kNewBan,        ///< fresh alert: newly banned (or re-banned after quiet)
  kAlreadyBanned, ///< no-op: the component is already actively banned
  kFlapReban,     ///< banned again within hysteresis of its clear: active
                  ///< again, but the alert is suppressed
};

class Blacklist {
 public:
  /// Ban a component from `at` until explicitly cleared.
  BanOutcome add(sim::ComponentRef ref, SimTime at);
  /// Repair finished: lift the ban. `at` feeds the flap-hysteresis clock;
  /// the default keeps legacy call sites (tests) compiling, at the cost of
  /// treating the clear as ancient history.
  void clear(sim::ComponentRef ref, SimTime at = SimTime{});

  /// One short-window span by default: a ban/clear/ban cycle faster than
  /// the detector can even produce a new window of evidence is a flap.
  void set_flap_hysteresis(SimTime h) noexcept { flap_hysteresis_ = h; }
  [[nodiscard]] std::uint64_t flap_rebans() const noexcept {
    return flap_rebans_;
  }

  /// Active bans only; cleared components (tombstones) do not count.
  [[nodiscard]] bool contains(sim::ComponentRef ref) const;
  [[nodiscard]] std::size_t size() const noexcept { return active_; }
  [[nodiscard]] std::vector<sim::ComponentRef> entries() const;

  /// Is this host schedulable? False when the host itself, its virtual
  /// switch, or any of its RNICs (given `rails_per_host` and the host's
  /// dense RNIC numbering) is blacklisted.
  [[nodiscard]] bool host_schedulable(HostId host,
                                      std::uint32_t rails_per_host) const;

 private:
  struct Entry {
    SimTime banned_at;
    SimTime cleared_at;
    bool active = false;
  };

  std::unordered_map<sim::ComponentRef, Entry> entries_;
  std::size_t active_ = 0;
  SimTime flap_hysteresis_ = SimTime::seconds(30);
  std::uint64_t flap_rebans_ = 0;
};

}  // namespace skh::core
