#include "core/sharded_detector.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/rng.h"

namespace skh::core {

ShardRing::ShardRing(std::size_t n_shards, std::size_t vnodes)
    : n_shards_(std::max<std::size_t>(1, n_shards)) {
  points_.reserve(n_shards_ * vnodes);
  for (std::size_t s = 0; s < n_shards_; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      points_.push_back(Point{
          seed_mix(0x5348524453484152ULL /*"SHRDSHAR"*/,
                           (static_cast<std::uint64_t>(s) << 20) | v),
          static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.shard < b.shard;  // collision tie-break: stable
            });
}

std::size_t ShardRing::shard_of(std::uint64_t key) const noexcept {
  if (n_shards_ == 1 || points_.empty()) return 0;
  const std::uint64_t h = seed_mix(key, 0x706169722d696473ULL);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t v) {
                               return p.hash < v;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->shard;
}

ShardedDetector::ShardedDetector(DetectorConfig cfg, std::size_t n_shards,
                                 common::ThreadPool* pool)
    : cfg_(cfg),
      ring_(std::max<std::size_t>(1, n_shards)),
      pool_(pool),
      router_(common::FlatTableConfig{cfg.expected_pairs,
                                      cfg.pair_table_fullness}) {
  const std::size_t n = std::max<std::size_t>(1, n_shards);
  // Per-shard table capacity: the ring spreads the expectation close to
  // evenly; 1/4 headroom keeps a mildly skewed split rehash-free too.
  DetectorConfig shard_cfg = cfg;
  if (cfg.expected_pairs > 0 && n > 1) {
    shard_cfg.expected_pairs = cfg.expected_pairs / n +
                               cfg.expected_pairs / (4 * n) + 16;
  }
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<AnomalyDetector>(shard_cfg));
  }
  batch_items_.resize(n);
  batch_events_.resize(n);
  batch_fired_.resize(n);
  batch_cursor_item_.resize(n);
  batch_cursor_event_.resize(n);
  shard_items_.resize(n, 0);
  batch_counts_.resize(n, 0);
  shard_items_published_.resize(n, 0);
}

void ShardedDetector::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  // Window logging follows the metrics posture: each shard appends its
  // closed windows to its own bounded log (no shared state, pool-safe) and
  // the hunter drains through drain_window_log.
  for (auto& shard : shards_) shard->set_window_logging(ctx != nullptr);
  if (shards_.size() == 1) {
    // Single shard: the legacy path, counters and tracer instants land on
    // the context directly.
    shards_[0]->attach_obs(ctx);
    return;
  }
  // Multi-shard: shards record into their private registries (pool jobs
  // must not share one registry's cells); sync_obs publishes the deltas.
}

void ShardedDetector::sync_obs() {
  if (obs_ == nullptr) return;
  auto& r = obs_->registry;
  // Facade-side load/skew series — they exist at every shard count and
  // are the data a migrate_range decision reads. All of them carry
  // ".shard" in the name: the scrape-identity contract is that every
  // series WITHOUT that marker is byte-identical across shard counts,
  // while these describe the partitioning itself.
  char name[64];
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::snprintf(name, sizeof name, "detector.shard%zu.pairs_owned", s);
    r.bind_gauge(r.gauge_id(name))
        .set(static_cast<double>(shards_[s]->pair_count()));
    std::snprintf(name, sizeof name, "detector.shard%zu.items_routed", s);
    r.bind_counter(r.counter_id(name))
        .add(shard_items_[s] - shard_items_published_[s]);
    shard_items_published_[s] = shard_items_[s];
  }
  r.bind_counter(r.counter_id("detector.shard.merge_stall_items"))
      .add(merge_stall_items_ - merge_stall_published_);
  merge_stall_published_ = merge_stall_items_;
  if (shards_.size() == 1) return;
  const DetectorCounters cur = counters();
  // Unconditional: a zero-valued series must still exist, or the scrape
  // would differ from the single-shard registry path (which registers
  // every name eagerly at attach) and break cross-shard-count identity.
  const auto publish = [&r](const char* name, std::uint64_t now,
                            std::uint64_t before) {
    r.bind_counter(r.counter_id(name)).add(now - before);
  };
  // The same nine series the single-detector registry path records; the
  // LOF path splits stay counters()-only there too (they live in the
  // per-pair models, not the registry).
  publish("detector.probes_ingested", cur.probes_ingested,
          published_.probes_ingested);
  publish("detector.samples_delivered", cur.samples_delivered,
          published_.samples_delivered);
  publish("detector.short_windows_closed", cur.short_windows_closed,
          published_.short_windows_closed);
  publish("detector.long_windows_closed", cur.long_windows_closed,
          published_.long_windows_closed);
  publish("detector.lof_gate_skips", cur.lof_gate_skips,
          published_.lof_gate_skips);
  publish("detector.events_emitted", cur.events_emitted,
          published_.events_emitted);
  publish("detector.windows_insufficient", cur.windows_insufficient,
          published_.windows_insufficient);
  publish("detector.duplicates_rejected", cur.duplicates_rejected,
          published_.duplicates_rejected);
  publish("detector.stale_rejected", cur.stale_rejected,
          published_.stale_rejected);
  published_ = cur;
}

ShardedDetector::GlobalHandle ShardedDetector::handle_of(
    const EndpointPair& pair) {
  const auto [gid, inserted] = router_.insert(pair);
  if (inserted) {
    if (gid >= shard_of_.size()) {
      shard_of_.resize(gid + 1, kUnplaced);
      local_of_.resize(gid + 1);
      pair_of_.resize(gid + 1);
    }
    const std::size_t s = ring_.shard_of(gid);
    shard_of_[gid] = static_cast<std::uint32_t>(s);
    local_of_[gid] = shards_[s]->handle_of(pair);
    pair_of_[gid] = pair;
  }
  return gid;
}

void ShardedDetector::reserve_pairs(std::size_t pairs) {
  router_.reserve(pairs);
  if (pairs > shard_of_.capacity()) {
    shard_of_.reserve(pairs);
    local_of_.reserve(pairs);
    pair_of_.reserve(pairs);
  }
  const std::size_t n = shards_.size();
  const std::size_t per =
      n == 1 ? pairs : pairs / n + pairs / (4 * n) + 16;
  for (auto& shard : shards_) shard->reserve_pairs(per);
}

std::size_t ShardedDetector::ingest(GlobalHandle h, std::uint64_t seq,
                                    SimTime sent_at, bool delivered,
                                    double rtt_us, std::uint32_t path_id,
                                    std::vector<AnomalyEvent>& out) {
  return shards_[shard_of_[h]]->ingest(local_of_[h], seq, sent_at, delivered,
                                       rtt_us, path_id, out);
}

std::size_t ShardedDetector::ingest_batch(
    std::span<const BatchItem> items, std::vector<AnomalyEvent>& events,
    std::vector<std::uint32_t>& fired_per_item) {
  events.clear();
  fired_per_item.assign(items.size(), 0);
  const std::size_t n = shards_.size();
  if (n == 1 || pool_ == nullptr) {
    // Degenerate / poolless path: plain sequential ingest, zero overhead
    // over the single detector it wraps.
    for (std::size_t i = 0; i < items.size(); ++i) {
      const BatchItem& it = items[i];
      fired_per_item[i] = static_cast<std::uint32_t>(
          ingest(it.handle, it.seq, it.sent_at, it.delivered, it.rtt_us,
                 it.path_id, events));
    }
    if (n == 1) {
      shard_items_[0] += items.size();
    } else {
      // Poolless multi-shard: account identically to the pooled path so
      // the load/skew series are a function of routing, not pool presence.
      std::fill(batch_counts_.begin(), batch_counts_.end(), 0);
      for (const BatchItem& it : items) ++batch_counts_[shard_of_[it.handle]];
      std::uint64_t max_items = 0;
      for (std::size_t s = 0; s < n; ++s) {
        shard_items_[s] += batch_counts_[s];
        max_items = std::max(max_items, batch_counts_[s]);
      }
      if (!items.empty()) {
        merge_stall_items_ += max_items * n - items.size();
      }
    }
    return events.size();
  }
  for (std::size_t s = 0; s < n; ++s) {
    batch_items_[s].clear();
    batch_events_[s].clear();
    batch_fired_[s].clear();
    batch_cursor_item_[s] = 0;
    batch_cursor_event_[s] = 0;
  }
  // Partition by owning shard, preserving round order within each shard —
  // same-pair results share a shard, so per-pair ingest order (the only
  // order verdicts depend on) is exactly the sequential one.
  for (std::size_t i = 0; i < items.size(); ++i) {
    batch_items_[shard_of_[items[i].handle]].push_back(i);
  }
  // Load/skew accounting: items routed per shard, and how many item-slots
  // the merge barrier wasted waiting for the most-loaded shard this batch.
  std::size_t max_items = 0;
  for (std::size_t s = 0; s < n; ++s) {
    shard_items_[s] += batch_items_[s].size();
    max_items = std::max(max_items, batch_items_[s].size());
  }
  if (!items.empty()) {
    merge_stall_items_ += static_cast<std::uint64_t>(max_items) * n -
                          items.size();
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (batch_items_[s].empty()) continue;
    pool_->submit([this, items, s] {
      AnomalyDetector& det = *shards_[s];
      auto& fired = batch_fired_[s];
      auto& out = batch_events_[s];
      for (const std::size_t i : batch_items_[s]) {
        const BatchItem& it = items[i];
        fired.push_back(static_cast<std::uint32_t>(
            det.ingest(local_of_[it.handle], it.seq, it.sent_at, it.delivered,
                       it.rtt_us, it.path_id, out)));
      }
    });
  }
  pool_->wait();
  // Merge by original item index: shard streams interleave back into the
  // exact event sequence sequential ingest would have produced.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t s = shard_of_[items[i].handle];
    const std::uint32_t fired = batch_fired_[s][batch_cursor_item_[s]++];
    if (fired > 0) {
      const auto begin =
          batch_events_[s].begin() +
          static_cast<std::ptrdiff_t>(batch_cursor_event_[s]);
      events.insert(events.end(), begin, begin + fired);
      batch_cursor_event_[s] += fired;
    }
    fired_per_item[i] = fired;
  }
  return events.size();
}

void ShardedDetector::drain_window_log(std::vector<obs::WindowRecord>& out) {
  const std::size_t first = out.size();
  for (auto& shard : shards_) shard->drain_window_log(out);
  // Canonical order, same rationale as canonicalize_events: (end, start,
  // pair) is a total order over the drained set — a pair closes at most one
  // window per boundary — so any shard count sorts to the same sequence.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const obs::WindowRecord& a, const obs::WindowRecord& b) {
              if (a.end != b.end) return a.end < b.end;
              if (a.start != b.start) return a.start < b.start;
              if (a.pair != b.pair) return a.pair < b.pair;
              // A flush can close a pair's short and long window at the
              // same boundary with the same start; the long flag breaks
              // the tie.
              return a.flags < b.flags;
            });
}

std::uint64_t ShardedDetector::window_log_drops() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->window_log_drops();
  return n;
}

void ShardedDetector::retire_pair(const EndpointPair& pair) {
  const GlobalHandle gid = router_.find(pair);
  if (gid == common::FlatPairTable::kNoSlot) return;
  shards_[shard_of_[gid]]->retire_pair(pair);
}

std::vector<AnomalyEvent> ShardedDetector::flush(SimTime now) {
  std::vector<AnomalyEvent> events;
  for (auto& shard : shards_) {
    const auto tail = shard->flush(now);
    events.insert(events.end(), tail.begin(), tail.end());
  }
  // Reconcile the router with shard-side recycling: a pair whose shard
  // slot was recycled (still retired at flush) gives its global id back.
  // Ascending id order — a pure function of the id set, so the router's
  // free list (and thus future id reuse) is shard-count-invariant.
  for (GlobalHandle gid = 0; gid < shard_of_.size(); ++gid) {
    if (shard_of_[gid] == kUnplaced) continue;
    const auto& shard = *shards_[shard_of_[gid]];
    if (shard.pair_table().find(pair_of_[gid]) ==
        common::FlatPairTable::kNoSlot) {
      router_.erase(pair_of_[gid]);
      router_.free_id(gid);
      shard_of_[gid] = kUnplaced;
    }
  }
  canonicalize_events(events);
  sync_obs();
  return events;
}

std::size_t ShardedDetector::retired_count() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->retired_count();
  return n;
}

DetectorCounters ShardedDetector::counters() const {
  DetectorCounters total;
  for (const auto& shard : shards_) total += shard->counters();
  return total;
}

std::size_t ShardedDetector::migrate_range(GlobalHandle lo, GlobalHandle hi,
                                           std::size_t to) {
  if (to >= shards_.size()) {
    throw std::out_of_range("migrate_range: no such shard");
  }
  std::size_t moved = 0;
  const GlobalHandle end =
      std::min<GlobalHandle>(hi, static_cast<GlobalHandle>(shard_of_.size()));
  for (GlobalHandle gid = lo; gid < end; ++gid) {
    const std::uint32_t from = shard_of_[gid];
    if (from == kUnplaced || from == to) continue;
    AnomalyDetector::PairState st;
    if (!shards_[from]->extract_pair(pair_of_[gid], st)) continue;
    local_of_[gid] = shards_[to]->adopt_pair(std::move(st));
    shard_of_[gid] = static_cast<std::uint32_t>(to);
    ++moved;
  }
  return moved;
}

ShardedDetector::Snapshot ShardedDetector::snapshot() const {
  Snapshot s;
  s.shards_.reserve(shards_.size());
  for (const auto& shard : shards_) s.shards_.push_back(shard->snapshot());
  s.router_ = router_;
  s.shard_of_ = shard_of_;
  s.local_of_ = local_of_;
  s.pair_of_ = pair_of_;
  return s;
}

void ShardedDetector::restore(const Snapshot& snap) {
  if (snap.shards_.size() != shards_.size()) {
    throw std::logic_error(
        "ShardedDetector::restore: shard count mismatch (shard count is "
        "config, not state)");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->restore(snap.shards_[s]);
  }
  router_ = snap.router_;
  shard_of_ = snap.shard_of_;
  local_of_ = snap.local_of_;
  pair_of_ = snap.pair_of_;
}

}  // namespace skh::core
