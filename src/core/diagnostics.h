// Secondary diagnostic signals used to confirm a localization.
//
// End-to-end probing narrows a failure to a small candidate set, but some
// candidates are observationally equivalent from the edge (an RNIC port and
// its ToR uplink degrade exactly the same probe set). Production resolves
// these with out-of-band signals: switch warning logs ("most link/switch
// anomalies can be immediately verified by warning logs", §7.2), RNIC
// flow-table dumps, OVS configuration inspection, and host config checks.
// The oracle models those signals against the fault injector's ground truth
// with a per-check confirmation probability (logs are occasionally missing
// or ambiguous) — imperfect confirmations are one source of the ~4%
// localization misses.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "sim/fault.h"

namespace skh::core {

struct OracleConfig {
  double link_log_confidence = 0.97;   ///< CRC / port-down counters present
  double switch_log_confidence = 0.95;
  double rnic_check_confidence = 0.92; ///< firmware/port state queries
  double vswitch_check_confidence = 0.93;  ///< OVS config inspection
  double host_check_confidence = 0.90;     ///< kernel logs, hugepage config
};

class DiagnosticsOracle {
 public:
  DiagnosticsOracle(const sim::FaultInjector& faults, RngStream rng,
                    OracleConfig cfg = {});

  /// Does the named component show a confirming diagnostic at time `t`?
  /// Deterministic per (component, fault): the same inspection repeated
  /// returns the same answer.
  [[nodiscard]] bool confirms(sim::ComponentRef ref, SimTime t);

 private:
  [[nodiscard]] double confidence_for(sim::ComponentKind kind) const;

  const sim::FaultInjector& faults_;
  RngStream rng_;
  OracleConfig cfg_;
  /// Memoized per-fault coin flips (stable answers across re-inspection).
  std::unordered_map<std::uint32_t, bool> decided_;
};

}  // namespace skh::core
