#include "core/ping_list_gen.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace skh::core {

std::vector<EndpointPair> basic_ping_list(
    const std::vector<Endpoint>& endpoints, const RankFn& rank_of) {
  return probe::rail_pruned_pairs(endpoints, rank_of);
}

std::vector<EndpointPair> skeleton_ping_list(
    const std::vector<EndpointPair>& skeleton_pairs) {
  // Each directed orientation is emitted at most once even when the input
  // carries both orientations (or repeats a pair): a duplicate directed
  // target would be double-probed every round and inflate
  // ProbingScale::skeleton. First-seen order is preserved.
  std::vector<EndpointPair> out;
  std::unordered_set<EndpointPair> seen;
  out.reserve(skeleton_pairs.size() * 2);
  seen.reserve(skeleton_pairs.size() * 2);
  for (const auto& p : skeleton_pairs) {
    if (seen.insert(p).second) out.push_back(p);
    const EndpointPair rev{p.dst, p.src};
    if (seen.insert(rev).second) out.push_back(rev);
  }
  return out;
}

std::vector<EndpointPair> detector_baseline_list(
    const std::vector<Endpoint>& endpoints, const topo::Topology& topo) {
  // Full mesh / 4 (the paper's reported deTector scale): keep every
  // same-rank pair (1/R of the mesh on R-rail hosts) plus a 1/7 hash-sample
  // of the cross-rank pairs, giving 1/8 + 7/8 * 1/7 = 1/4 of the mesh on
  // 8-rail hosts. The hash is deterministic so the plan is stable across
  // rounds (deTector's probing matrix is precomputed).
  std::vector<EndpointPair> out;
  for (const Endpoint& s : endpoints) {
    for (const Endpoint& d : endpoints) {
      if (s.container == d.container) continue;
      const bool same_rank =
          topo.rail_of(s.rnic) == topo.rail_of(d.rnic);
      if (same_rank) {
        out.push_back(EndpointPair{s, d});
        continue;
      }
      std::uint64_t h = (static_cast<std::uint64_t>(s.rnic.value()) << 32) |
                        d.rnic.value();
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
      h ^= h >> 31;
      if (h % 7 == 0) out.push_back(EndpointPair{s, d});
    }
  }
  return out;
}

std::vector<EndpointPair> link_cover_list(
    const std::vector<Endpoint>& endpoints, const topo::Topology& topo,
    std::size_t min_cover) {
  // Candidate pool: all inter-container directed pairs. Greedy set cover:
  // repeatedly take the pair whose ECMP path adds the most missing link
  // coverage until every link reachable by the task is covered min_cover
  // times (or no pair helps).
  std::unordered_map<LinkId, std::size_t> cover;
  std::unordered_set<LinkId> all_links;
  const auto pool = probe::full_mesh_pairs(endpoints);
  std::vector<std::vector<LinkId>> paths(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    paths[i] = topo.route(pool[i].src.rnic, pool[i].dst.rnic).links;
    for (LinkId l : paths[i]) all_links.insert(l);
  }
  std::vector<EndpointPair> selected;
  std::vector<bool> used(pool.size(), false);
  while (true) {
    std::size_t best = pool.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      std::size_t gain = 0;
      for (LinkId l : paths[i]) {
        if (cover[l] < min_cover) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == pool.size() || best_gain == 0) break;
    used[best] = true;
    selected.push_back(pool[best]);
    for (LinkId l : paths[best]) ++cover[l];
  }
  return selected;
}

ProbingScale probing_scale(const std::vector<Endpoint>& endpoints,
                           const RankFn& rank_of, const topo::Topology& topo,
                           const std::vector<EndpointPair>& skeleton_pairs) {
  ProbingScale s;
  s.full_mesh = probe::full_mesh_pairs(endpoints).size();
  s.detector = detector_baseline_list(endpoints, topo).size();
  s.basic = basic_ping_list(endpoints, rank_of).size();
  s.skeleton = skeleton_ping_list(skeleton_pairs).size();
  return s;
}

std::size_t max_targets_per_agent(const std::vector<EndpointPair>& pairs) {
  std::map<ContainerId, std::size_t> per_agent;
  for (const auto& p : pairs) ++per_agent[p.src.container];
  std::size_t best = 0;
  for (const auto& [c, n] : per_agent) best = std::max(best, n);
  return best;
}

}  // namespace skh::core
