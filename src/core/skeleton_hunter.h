// The SkeletonHunter system facade (§4, Figure 11): controller + agents +
// analyzer wired over the simulated cluster.
//
// Lifecycle per monitored task:
//   submit     -> preload: rail-pruned basic ping list computed immediately
//                 (before any container runs).
//   container  -> an agent spawns (sidecar) holding its slice of the basic
//   running       list; all targets stay inactive until the destination
//                 container *registers* — registration is fired by the
//                 orchestrator's running callback, i.e. by the data plane.
//   runtime    -> once throughput observations are supplied, traffic-
//                 skeleton inference replaces the agents' lists with the
//                 skeleton probing matrix (>95% smaller than full mesh).
//   each tick  -> agents probe their active targets; results stream into
//                 the anomaly detector; per-pair anomaly events aggregate
//                 into failure cases; quiet cases are localized with
//                 Algorithm 1 and closed.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/orchestrator.h"
#include "collective/diag.h"
#include "common/pool.h"
#include "core/anomaly.h"
#include "core/blacklist.h"
#include "core/sharded_detector.h"
#include "core/diagnostics.h"
#include "core/fidelity.h"
#include "core/localize.h"
#include "core/ping_list_gen.h"
#include "core/skeleton_inference.h"
#include "obs/context.h"
#include "obs/timeline.h"
#include "probe/agent.h"
#include "probe/engine.h"
#include "probe/telemetry.h"

namespace skh::core {

struct SkeletonHunterConfig {
  SimTime probe_interval = SimTime::seconds(1);
  /// Probe-engine knobs, including the routing mode (static ECMP / adaptive
  /// / packet spray). A non-static mode forces `detector.track_paths` on —
  /// path diversity without per-path sub-series would just dilute the
  /// pair-level windows and hide exactly the gray members spray exists to
  /// expose.
  probe::EngineConfig engine{};
  DetectorConfig detector{};
  /// Analyzer shards the pair space is partitioned across (consistent-hash
  /// on stable global pair id; see core/sharded_detector.h). Verdicts are
  /// bit-identical at any shard count — sharding buys ingest parallelism,
  /// never behavior. 1 keeps the classic single-analyzer path.
  std::size_t analyzer_shards = 1;
  InferenceConfig inference{};
  /// A failure case with no fresh events for this long is localized+closed.
  SimTime case_quiet_period = SimTime::seconds(90);
  /// Distinct cases form when events arrive on disjoint pair sets; events on
  /// overlapping components within this window merge into one case.
  SimTime case_merge_window = SimTime::minutes(5);
  bool use_skeleton = true;             ///< ablation: runtime optimization
  bool incremental_activation = true;   ///< ablation: registration gating
  /// §7.3 mitigation: validate the inferred skeleton against the observed
  /// bursts before trusting it; an unacceptable fidelity keeps the basic
  /// list (covers debug clusters and unknown parallelism strategies).
  bool validate_fidelity = true;
  FidelityConfig fidelity{};
  /// §8: blacklist localized culprit components and install a placement
  /// filter so no new task is scheduled onto them until repaired.
  bool auto_blacklist = true;
  /// Churn reconciliation: after a mid-run restart/migration/crash the task
  /// degrades to the basic list, and inference re-runs only once every
  /// current (live) endpoint has at least this many *fresh* post-churn
  /// observation batches — stale pre-churn series would just re-infer the
  /// skeleton the churn invalidated.
  std::size_t reinference_min_samples = 2;
  /// Gray measurement plane: the telemetry fault plan applied to every
  /// probe round between the sidecars and the analyzer (empty = honest
  /// channel, zero RNG draws). kAnalyzerBlackout episodes take the analyzer
  /// down entirely: on entry the hunter checkpoints and cold-resets its
  /// analyzer state, on exit it restores the checkpoint and resumes warm.
  sim::TelemetryFaultPlan telemetry{};
  /// Localizer knobs (traceroute-coverage demotion threshold).
  LocalizerConfig localizer{};
  /// Collective signal plane: slow/hang diagnosis knobs for the step
  /// traces fed via ingest_collective_steps (no-op until a task registers
  /// its communicators).
  collective::CollectiveDiagConfig collective{};
  /// Cross-plane agreement bonus added to a probe case's localization
  /// confidence when collective verdicts corroborate it. The result may
  /// exceed 1.0 — values above 1.0 explicitly mean "independently
  /// confirmed by the collective plane", not just "all consulted probe
  /// evidence answered". Capped at 1.25.
  double corroboration_bonus = 0.25;
};

/// Which signal plane a failure case came from. Probe-plane cases are
/// scored against the injected network ground truth; network-silent cases
/// are tenant-visible incidents (NCCL hang, straggler host) the probe
/// mesh is structurally blind to — CCL-D/Mycroft territory, routed to the
/// tenant/host owners instead of netops.
enum class CaseClass : std::uint8_t {
  kProbePlane,
  kTenantVisibleNetworkSilent,
};

[[nodiscard]] std::string_view to_string(CaseClass c) noexcept;

/// One aggregated failure: the unit scored against injected ground truth.
struct FailureCase {
  std::uint32_t id = 0;
  TaskId task;
  SimTime first_event;
  SimTime last_event;
  std::set<EndpointPair> pairs;
  std::vector<AnomalyEvent> events;
  Localization localization;
  bool closed = false;
  bool suppressed = false;  ///< transient, filtered before reporting
  SimTime closed_at;
  /// Which plane opened this case.
  CaseClass cls = CaseClass::kProbePlane;
  /// Collective verdicts attached to this case: the evidence itself for a
  /// network-silent case, corroboration for a probe-plane case.
  std::vector<collective::CollectiveVerdict> collective_evidence;
  /// Cross-plane agreements (collective verdicts whose root/waiters
  /// overlap this probe case's pairs).
  std::uint32_t collective_agreements = 0;
  /// Causal chain from the first anomalous window through scoring to the
  /// localization verdict — the ticket an operator would read (§6).
  obs::CaseTimeline timeline;
};

class SkeletonHunter {
 public:
  SkeletonHunter(const topo::Topology& topo,
                 overlay::OverlayNetwork& overlay,
                 cluster::Orchestrator& orchestrator,
                 sim::EventQueue& events, const sim::FaultInjector& faults,
                 RngStream rng, SkeletonHunterConfig cfg = {});

  /// Attach the observability context to the whole detection pipeline:
  /// this facade plus its probe engine, anomaly detector, and localizer.
  /// nullptr detaches all of them. Attach before `start()`.
  void attach_obs(obs::Context* ctx);

  /// Preload phase for a submitted task: compute its basic ping list.
  /// Must be called after Orchestrator::submit_task for the task to be
  /// monitored.
  void monitor_task(TaskId task);

  /// Supply throughput observations for the runtime inference phase; on a
  /// feasible inference the task's agents switch to the skeleton list.
  /// Returns the inference result (nullopt = infeasible or rejected by the
  /// fidelity validator; the basic list is kept either way).
  ///
  /// While a task is degraded by churn, batches accumulate instead: nullopt
  /// is returned until every live endpoint has reinference_min_samples
  /// fresh batches, then inference re-runs through the same fidelity gate.
  /// A failed re-inference resets the accumulation epoch.
  std::optional<InferredSkeleton> supply_observations(
      TaskId task, const std::vector<EndpointObservation>& obs);

  /// Whether churn has put the task in degraded mode (probing the basic
  /// list while fresh observations accumulate toward re-inference).
  [[nodiscard]] bool task_degraded(TaskId task) const;

  /// User opt-out (§7.3): stop probing this task entirely — for tenants
  /// who know their workload breaks the collective-communication
  /// assumptions.
  void opt_out(TaskId task);

  /// Begin probing: schedules a tick every probe_interval until `end`.
  void start(SimTime end);

  /// Close every open case (end of campaign) and localize them.
  void finalize();

  // --- results --------------------------------------------------------------
  [[nodiscard]] const std::vector<FailureCase>& failure_cases() const noexcept {
    return cases_;
  }
  [[nodiscard]] std::size_t total_probes() const noexcept {
    return collector_.total_results();
  }
  /// Anomaly-detector ingest counters (probes, windows, LOF path split).
  [[nodiscard]] DetectorCounters detector_counters() const {
    return detector_.counters();
  }
  [[nodiscard]] const probe::Collector& collector() const noexcept {
    return collector_;
  }
  /// Current directed-target count across a task's agents (Fig. 15/16).
  [[nodiscard]] std::size_t current_targets(TaskId task) const;
  /// Components banned from scheduling so far (§8).
  [[nodiscard]] const Blacklist& blacklist() const noexcept {
    return blacklist_;
  }
  /// The (possibly sharded) analyzer behind this hunter.
  [[nodiscard]] const ShardedDetector& detector() const noexcept {
    return detector_;
  }
  /// Shard rebalance: move the global-pair-id range [lo, hi) onto
  /// `to_shard` mid-campaign. Per-pair window state migrates whole
  /// (extract/adopt), so verdicts are unperturbed. Returns pairs moved.
  std::size_t rebalance_pairs(std::uint32_t lo, std::uint32_t hi,
                              std::size_t to_shard) {
    return detector_.migrate_range(lo, hi, to_shard);
  }
  /// Repair completed: lift the ban on a component.
  void mark_repaired(sim::ComponentRef ref);

  // --- collective signal plane ----------------------------------------------
  /// Register a monitored task's communicators with the collective
  /// diagnoser (typically build_collective_groups(layout)). Idempotent
  /// per task: re-registration replaces the group set and resets its
  /// diagnosis state.
  void register_collectives(TaskId task,
                            const std::vector<workload::CollectiveGroup>& gs);
  /// Feed one emitted step-trace batch. Verdicts route into the case
  /// machinery: agreement with an open probe case attaches as
  /// corroboration (confidence bonus at close); an uncorroborated hang or
  /// straggler opens/merges a kTenantVisibleNetworkSilent case. Dropped
  /// during an analyzer blackout, like probe results.
  void ingest_collective_steps(TaskId task,
                               std::span<const workload::StepRecord> records);
  /// Steps the collective diagnoser has ingested (all tasks).
  [[nodiscard]] std::uint64_t collective_steps() const noexcept;
  /// Collective verdicts emitted so far (hang + slow, all tasks).
  [[nodiscard]] std::uint64_t collective_verdicts() const noexcept;

  // --- gray telemetry & warm restart ---------------------------------------
  class Snapshot;
  /// Serialize the analyzer state (detector windows + streaks, result
  /// store, case registry, blacklist, task monitors) into an opaque
  /// snapshot. Agents and the probe engine are NOT captured — the sidecars
  /// are separate processes that keep running while the analyzer is down.
  [[nodiscard]] Snapshot checkpoint() const;
  /// Warm-restart the analyzer from a snapshot taken by checkpoint().
  void restore(const Snapshot& snap);
  /// The measurement-plane channel every probe round crosses (counters of
  /// what the plane dropped/duplicated/delayed/skewed/corrupted).
  [[nodiscard]] const probe::TelemetryChannel& telemetry_channel()
      const noexcept {
    return telemetry_;
  }
  /// Whether a kAnalyzerBlackout episode currently has the analyzer down.
  [[nodiscard]] bool analyzer_in_blackout() const noexcept {
    return in_blackout_;
  }
  /// Warm restarts performed after blackout episodes so far.
  [[nodiscard]] std::uint64_t analyzer_restores() const noexcept {
    return restores_;
  }

 private:
  struct TaskMonitor {
    bool active = false;
    std::vector<Endpoint> endpoints;
    std::vector<EndpointPair> current_list;  ///< directed probing matrix
    bool skeleton_applied = false;
    // --- churn reconciliation state ---------------------------------------
    bool degraded = false;  ///< churned; basic list reinstalled
    /// Fresh post-churn observation batches per endpoint (epoch resets on
    /// further churn and on failed re-inference).
    std::map<Endpoint, std::size_t> fresh_counts;
    std::map<Endpoint, EndpointObservation> fresh_obs;  ///< latest batch
  };

  void on_created(const cluster::ContainerInfo& ci);
  void on_running(const cluster::ContainerInfo& ci);
  void on_stopped(const cluster::ContainerInfo& ci);
  void on_churn(const cluster::ContainerInfo& ci,
                cluster::Orchestrator::ChurnReason reason);
  /// Tear the task back to the rail-pruned basic list: refresh endpoints
  /// (migrations rebind RNICs, crashes remove containers), invalidate the
  /// skeleton, clear the fresh-observation epoch, redistribute.
  void degrade_to_basic(TaskId task);
  /// Shared inference path: infer + fidelity gate + install skeleton list.
  std::optional<InferredSkeleton> try_apply_skeleton(
      TaskId task, const std::vector<EndpointObservation>& obs);
  void spawn_agent(const cluster::ContainerInfo& ci);
  void distribute_list(TaskId task);
  /// Analyzer process death at blackout entry: every in-memory structure
  /// the snapshot protects is genuinely destroyed, so the post-blackout
  /// state can only come from restore().
  void cold_reset_analyzer();
  void tick();
  void route_events(TaskId task, std::vector<AnomalyEvent> events);
  void close_case(FailureCase& c);
  /// Route one collective verdict: corroborate an overlapping open probe
  /// case, else open/merge a network-silent case.
  void route_collective_verdict(TaskId task,
                                const collective::CollectiveVerdict& v);
  /// Close path for kTenantVisibleNetworkSilent cases: localization comes
  /// from the verdict chain (root container + host + wait-for chain), not
  /// from Algorithm 1 — there are no anomalous pairs to tomograph.
  void close_collective_case(FailureCase& c);
  /// Drain the detector's closed-window log: feed the window-residence
  /// stage histogram and the flight recorder's per-pair rings.
  void drain_windows();
  /// Build this case's forensic bundle from the recorder's rings and store
  /// it (replacing any earlier emission for the same case id).
  void emit_bundle(const FailureCase& c);
  [[nodiscard]] std::uint32_t rank_of(const Endpoint& ep) const;

  const topo::Topology& topo_;
  overlay::OverlayNetwork& overlay_;
  cluster::Orchestrator& orch_;
  sim::EventQueue& events_;
  SkeletonHunterConfig cfg_;

  probe::ProbeEngine engine_;
  probe::Collector collector_;
  /// Worker pool driving the analyzer shards (null at 1 shard). Declared
  /// before detector_: the detector borrows it and must die first.
  std::unique_ptr<common::ThreadPool> shard_pool_;
  ShardedDetector detector_;
  DiagnosticsOracle oracle_;
  Localizer localizer_;
  probe::TelemetryChannel telemetry_;

  /// Per-task collective signal plane: the registered communicators and
  /// their diagnosis state. Value-semantic on purpose — the blackout
  /// checkpoint copies it like the monitors.
  struct CollectivePlane {
    std::vector<workload::CollectiveGroup> groups;
    collective::CollectiveDiagnoser diag;
  };

  Blacklist blacklist_;
  std::map<TaskId, TaskMonitor> monitors_;
  std::map<TaskId, CollectivePlane> collective_;
  /// Per-ingest verdict scratch, reused.
  std::vector<collective::CollectiveVerdict> verdict_scratch_;
  std::map<ContainerId, probe::Agent> agents_;
  std::vector<FailureCase> cases_;
  SimTime end_;
  bool started_ = false;
  std::uint64_t ticks_ = 0;
  bool in_blackout_ = false;
  std::uint64_t restores_ = 0;
  /// Time of the last warm restart. Quiet-period and merge-window checks
  /// clock against max(case.last_event, last_restore_): while the analyzer
  /// was dead it observed nothing, so the blackout span is not evidence of
  /// silence — without this floor an in-flight case would be closed (and a
  /// duplicate opened) the moment the analyzer came back.
  SimTime last_restore_;
  std::unique_ptr<Snapshot> blackout_snapshot_;
  /// Per-tick sink for raw agent results; only what survives the telemetry
  /// channel reaches collector_ (the analyzer's store).
  probe::Collector scratch_;
  /// Per-tick batch-ingest scratch (routed items, fired events, per-item
  /// fired counts), reused across ticks.
  std::vector<ShardedDetector::BatchItem> batch_;
  std::vector<AnomalyEvent> batch_events_;
  std::vector<std::uint32_t> batch_fired_;

  obs::Context* obs_ = nullptr;
  obs::Counter m_cases_opened_;
  obs::Counter m_cases_closed_;
  obs::Counter m_cases_suppressed_;
  obs::Counter m_ticks_;
  obs::Counter m_churn_events_;
  obs::Counter m_replans_;
  obs::Gauge m_active_agents_;
  obs::Gauge m_degraded_tasks_;
  obs::Counter m_restores_;
  obs::Counter m_flap_rebans_;
  // Collective signal plane counters.
  obs::Counter m_coll_steps_;
  obs::Counter m_coll_hangs_;
  obs::Counter m_coll_slows_;
  obs::Counter m_coll_agreements_;
  obs::Counter m_coll_silent_cases_;
  obs::Counter m_coll_absorbed_;
  /// The flight recorder behind obs_ when enabled (nullptr otherwise);
  /// bundles, window rings, and vote history flow through here.
  obs::FlightRecorder* recorder_ = nullptr;
  /// Ingest-to-verdict latency plane, stages 2-5 (stage 1, the telemetry
  /// channel delay, lives on TelemetryChannel). All sim-time seconds.
  obs::Histogram h_window_residence_s_;  ///< window close - window open
  obs::Histogram h_detect_s_;            ///< event routed - event detected
  obs::Histogram h_localize_s_;          ///< verdict - first event
  obs::Histogram h_verdict_s_;           ///< verdict - first window open
  /// Per-tick drain scratch for the detector's closed-window log.
  std::vector<obs::WindowRecord> window_scratch_;

 public:
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class SkeletonHunter;
    ShardedDetector::Snapshot detector_;
    probe::Collector collector_;
    std::vector<FailureCase> cases_;
    Blacklist blacklist_;
    std::map<TaskId, TaskMonitor> monitors_;
    std::map<TaskId, CollectivePlane> collective_;
    std::uint64_t ticks_ = 0;
  };
};

}  // namespace skh::core
