// Per-collective step-timing/dependency traces (the second signal plane).
//
// The probe mesh sees the network; it is structurally blind to failures
// that never touch it — an NCCL-level hang, a straggling rank, a slow
// host. CCL-D diagnoses those at collective-step granularity and Mycroft
// traces the wait-for dependencies between steps; this header gives the
// workload generator the same vocabulary. Each DP ring / PP chain / EP
// all-to-all group the traffic matrix already synthesizes becomes a
// CollectiveGroup whose per-iteration execution is a deterministic
// schedule of StepRecords: who ran which step when, gated by which ranks'
// previous steps. The trace is a pure function of (layout, config, rng
// stream), so campaigns replay bit-identically at any thread or shard
// count — the same discipline as every other plane in this repo.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "workload/parallelism.h"

namespace skh::workload {

/// The collective patterns that emit step traces. Mirrors the traffic
/// matrix: DP rings, PP stage chains, EP all-to-all fan-in.
enum class CollectiveKind : std::uint8_t {
  kRingAllReduce,
  kPipelineP2p,
  kAllToAll,
};

[[nodiscard]] std::string_view to_string(CollectiveKind k) noexcept;

/// One communicator: an ordered rank list plus the pattern it runs.
struct CollectiveGroup {
  std::uint32_t id = 0;
  CollectiveKind kind = CollectiveKind::kRingAllReduce;
  std::vector<Endpoint> members;  ///< rank order (dp_rank / stage order)
  /// Per-rank container index within the task (`index_in_task`), the
  /// coordinate host-side fault plans address victims by.
  std::vector<std::uint32_t> container_index;

  /// Steps one iteration of this pattern executes.
  [[nodiscard]] std::uint32_t num_steps() const noexcept;
};

/// Ranks whose completion of `step - 1` gates (step, rank). Static pure
/// dependency structure (Mycroft's wait-for graph):
///   ring      — a rank waits on itself and its ring predecessor (the
///               chunk it reduces next comes from (rank-1) mod n),
///   pipeline  — stage handoff s waits on handoff s-1 (one participant
///               per step; see `pipeline_participant`),
///   all2all   — a rank waits on itself and its current exchange peer,
///               so every rank transitively fans into every other.
/// Empty at step 0. Results are sorted ascending.
[[nodiscard]] std::vector<std::uint32_t> dep_ranks(CollectiveKind kind,
                                                   std::uint32_t n,
                                                   std::uint32_t step,
                                                   std::uint32_t rank);

/// The single rank performing pipeline handoff `step` (receiver side):
/// forward steps 0..n-2 are stages 1..n-1, backward steps n-1..2n-3 walk
/// back down. Other kinds involve every rank each step.
[[nodiscard]] std::uint32_t pipeline_participant(std::uint32_t n,
                                                 std::uint32_t step);

/// Build every communicator of a layout, id-dense in deterministic order:
/// DP rings per (stage, rail) with members ordered by dp_rank, then PP
/// chains per (dp_rank, rail) in stage order, then (MoE) EP all-to-all
/// groups per (stage, rail, expert block). Degenerate dimensions (dp<2,
/// pp<2) emit no groups for that pattern.
[[nodiscard]] std::vector<CollectiveGroup> build_collective_groups(
    const TaskLayout& layout);

/// One rank's execution of one step of one iteration.
struct StepRecord {
  std::uint32_t group = 0;
  std::uint32_t iteration = 0;
  std::uint32_t step = 0;
  std::uint32_t rank = 0;
  Endpoint endpoint;
  SimTime start;  ///< when its dependencies were satisfied
  SimTime end;    ///< completion; valid only when `done`
  bool started = false;  ///< deps satisfied (false == blocked by the chain)
  bool done = false;     ///< false + started == this rank is the stall root
};

struct CollectiveTraceConfig {
  SimTime step_base = SimTime::millis(4);  ///< nominal per-step duration
  double jitter_frac = 0.15;               ///< uniform duration jitter
  /// Probe-visible network faults couple into the collectives: per-step
  /// extra delay = extra_latency_us + loss_probability * retransmit
  /// penalty, summed over the faulted components an endpoint traverses.
  double loss_retransmit_us = 5000.0;
};

/// Simulates group iterations into StepRecords. Host-side fault effects
/// and network coupling come in as callbacks so this stays a pure
/// workload-layer object (the harness wires them to sim::FaultInjector
/// and sim::CollectiveFaultPlan).
class CollectiveTraceGenerator {
 public:
  /// Extra per-step delay (us) the network imposes on an endpoint at a
  /// time, or nullopt when the endpoint is unreachable (the step hangs).
  using NetworkDelayFn =
      std::function<std::optional<double>(const Endpoint&, SimTime)>;
  /// Host-side fault state for a container at a time.
  struct HostEffect {
    bool hang = false;        ///< the rank never completes its step
    double slowdown = 1.0;    ///< duration multiplier (>= 1)
  };
  using HostFaultFn =
      std::function<HostEffect(std::uint32_t container_index, SimTime)>;

  CollectiveTraceGenerator(std::vector<CollectiveGroup> groups,
                           CollectiveTraceConfig cfg, RngStream rng);

  void set_network_delay_fn(NetworkDelayFn fn) { net_ = std::move(fn); }
  void set_host_fault_fn(HostFaultFn fn) { host_ = std::move(fn); }

  [[nodiscard]] const std::vector<CollectiveGroup>& groups() const noexcept {
    return groups_;
  }

  /// Emit every group's records for iteration `iteration` starting at
  /// `at`. Jitter draws come from a per-iteration named fork in a fixed
  /// (group, step, rank) order — and are drawn for hung/blocked ranks
  /// too — so the stream alignment (hence every later iteration) is
  /// independent of which faults were active.
  [[nodiscard]] std::vector<StepRecord> emit_iteration(
      std::uint32_t iteration, SimTime at);

 private:
  std::vector<CollectiveGroup> groups_;
  CollectiveTraceConfig cfg_;
  RngStream rng_;
  NetworkDelayFn net_;
  HostFaultFn host_;
};

/// Order-sensitive FNV-1a fold over a record span, chained through `h` —
/// the byte-identity witness the determinism gates compare across runner
/// thread counts and analyzer shard counts.
[[nodiscard]] std::uint64_t fingerprint_records(
    std::span<const StepRecord> records,
    std::uint64_t h = 0xcbf29ce484222325ull);

}  // namespace skh::workload
