// Collective-communication pair generation.
//
// The spatial sparsity SkeletonHunter exploits (§3.2) comes from collective
// communication libraries shaping traffic into a few fixed patterns:
// ring all-reduce across DP replicas, point-to-point transfers between
// adjacent pipeline stages, and all-to-all exchanges inside expert groups.
// These helpers produce the endpoint pairs of each pattern; the traffic
// matrix and the ground-truth skeleton are unions of them.
#pragma once

#include <vector>

#include "common/ids.h"

namespace skh::workload {

/// Undirected communicating pair with a relative traffic volume.
struct CommEdge {
  Endpoint a;
  Endpoint b;
  double volume = 1.0;  ///< relative bytes per iteration

  friend constexpr auto operator<=>(const CommEdge&,
                                    const CommEdge&) noexcept = default;
};

/// Ring all-reduce: member i exchanges with member (i+1) mod n.
/// n == 1 yields no edges; n == 2 yields one edge.
[[nodiscard]] std::vector<CommEdge> ring_allreduce(
    const std::vector<Endpoint>& members, double volume = 1.0);

/// Pipeline: stage s exchanges activations/gradients with stage s+1.
/// `stages[s]` is the endpoint holding stage s (for one DP replica, one
/// rail).
[[nodiscard]] std::vector<CommEdge> pipeline_p2p(
    const std::vector<Endpoint>& stages, double volume = 1.0);

/// NCCL-style double binary tree all-reduce: two mirrored binary trees over
/// the members (NCCL selects tree all-reduce for latency-bound sizes and
/// runs both trees to balance bandwidth). Combined with the ring, this gives
/// each member the ~9-connected-destinations footprint of Figure 9a.
[[nodiscard]] std::vector<CommEdge> double_binary_tree(
    const std::vector<Endpoint>& members, double volume = 1.0);

/// All-to-all: every unordered pair of members (expert parallelism).
[[nodiscard]] std::vector<CommEdge> all_to_all(
    const std::vector<Endpoint>& members, double volume = 1.0);

/// Deduplicate and merge volumes of identical unordered pairs.
[[nodiscard]] std::vector<CommEdge> merge_edges(std::vector<CommEdge> edges);

}  // namespace skh::workload
