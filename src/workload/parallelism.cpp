#include "workload/parallelism.h"

#include <sstream>
#include <stdexcept>

namespace skh::workload {

void ParallelismConfig::validate() const {
  if (tp == 0 || pp == 0 || dp == 0 || ep == 0) {
    throw std::invalid_argument("ParallelismConfig: degrees must be > 0");
  }
  if (moe && dp % ep != 0) {
    throw std::invalid_argument(
        "ParallelismConfig: EP must divide DP for MoE expert sharding");
  }
}

std::string ParallelismConfig::to_string() const {
  std::ostringstream os;
  os << "TP" << tp << "/PP" << pp << "/DP" << dp;
  if (moe) os << "/EP" << ep;
  return os.str();
}

const EndpointRole* TaskLayout::role_of(const Endpoint& ep) const {
  for (const auto& r : roles) {
    if (r.endpoint == ep) return &r;
  }
  return nullptr;
}

std::vector<Endpoint> TaskLayout::position_group(std::uint32_t stage,
                                                 std::uint32_t rail) const {
  std::vector<Endpoint> out;
  for (const auto& r : roles) {
    if (r.stage == stage && r.rail == rail) out.push_back(r.endpoint);
  }
  return out;
}

TaskLayout make_layout(const cluster::TaskInfo& task,
                       const std::vector<cluster::ContainerInfo>& containers,
                       const ParallelismConfig& par) {
  par.validate();
  if (containers.size() != par.num_containers()) {
    throw std::invalid_argument("make_layout: container count != PP*DP");
  }
  TaskLayout layout;
  layout.task = task.id;
  layout.par = par;
  for (const auto& ci : containers) {
    if (ci.task != task.id) {
      throw std::invalid_argument("make_layout: container from another task");
    }
    if (ci.rnics.size() != par.tp) {
      throw std::invalid_argument("make_layout: container RNIC count != TP");
    }
    const std::uint32_t stage = ci.index_in_task % par.pp;
    const std::uint32_t dp_rank = ci.index_in_task / par.pp;
    for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
      EndpointRole role;
      role.endpoint = Endpoint{ci.id, ci.rnics[rail]};
      role.dp_rank = dp_rank;
      role.stage = stage;
      role.rail = rail;
      layout.roles.push_back(role);
    }
  }
  return layout;
}

ParallelismConfig default_parallelism(std::uint32_t num_gpus,
                                      std::uint32_t gpus_per_container,
                                      bool moe) {
  if (gpus_per_container == 0 || num_gpus % gpus_per_container != 0) {
    throw std::invalid_argument(
        "default_parallelism: container size must divide GPU count");
  }
  ParallelismConfig cfg;
  cfg.tp = gpus_per_container;
  const std::uint32_t groups = num_gpus / gpus_per_container;  // PP * DP
  // Near-square split preferring DP >= PP (DP shrinks gradient sync time,
  // PP depth is bounded by the model).
  std::uint32_t pp = 1;
  for (std::uint32_t candidate = 1;
       candidate * candidate <= groups; ++candidate) {
    if (groups % candidate == 0) pp = candidate;
  }
  cfg.pp = pp;
  cfg.dp = groups / pp;
  cfg.moe = moe;
  if (moe) {
    // Experts sharded across a subgroup of the DP dimension.
    cfg.ep = cfg.dp >= 4 ? 4 : cfg.dp;
    while (cfg.ep > 1 && cfg.dp % cfg.ep != 0) --cfg.ep;
  }
  cfg.validate();
  return cfg;
}

}  // namespace skh::workload
