// Traffic matrix construction and RNIC burst time-series synthesis.
//
// The traffic matrix is the union of the collective patterns a layout
// implies (DP ring all-reduce, PP point-to-point, MoE all-to-all) — the
// sparse structure of Figure 9. The burst synthesizer produces each RNIC's
// 1 Hz throughput series (Figure 7): per-iteration pipeline micro-bursts
// whose cadence depends on the pipeline stage, a large end-of-iteration
// gradient-sync burst, a small rail-dependent chunk-scheduling signature
// (ring all-reduce shards chunks differently per rail, giving each rail a
// distinct harmonic fingerprint), and measurement noise. RNICs in the same
// (stage, rail) position across DP replicas therefore share burst cycles up
// to noise — the property traffic-skeleton inference relies on (§5.1).
#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/collectives.h"
#include "workload/parallelism.h"

namespace skh::workload {

/// Sparse undirected traffic matrix of a training task.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::vector<CommEdge> edges);

  [[nodiscard]] const std::vector<CommEdge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] bool communicates(const Endpoint& a, const Endpoint& b) const;
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }
  /// Fraction of all unordered endpoint pairs that carry traffic.
  [[nodiscard]] double density(std::size_t num_endpoints) const;
  /// Endpoints this endpoint communicates with.
  [[nodiscard]] std::vector<Endpoint> peers_of(const Endpoint& e) const;

 private:
  std::vector<CommEdge> edges_;
};

/// Relative volumes of the collective patterns (bytes per iteration, in
/// arbitrary units; DP gradient sync dominates).
struct TrafficVolumes {
  double dp_allreduce = 8.0;
  double pp_p2p = 3.0;
  double ep_all_to_all = 4.0;
  /// Also include NCCL's double-binary-tree all-reduce edges across DP
  /// (true reproduces Figure 9a's ~9 connected destinations per GPU).
  bool dp_tree = true;
  double dp_tree_volume = 2.0;
};

/// Build the task's traffic matrix from its layout:
///  - ring all-reduce across each (stage, rail) position group (DP),
///  - p2p chains across stages for each (dp_rank, rail) (PP),
///  - all-to-all within expert groups for MoE layouts (EP).
[[nodiscard]] TrafficMatrix build_traffic_matrix(
    const TaskLayout& layout, const TrafficVolumes& volumes = {});

/// Burst-series synthesis parameters (Figure 7's axes: 900 s at 1 Hz with
/// ~15 Gbps peaks and a ~30 s iteration period).
struct BurstConfig {
  double duration_s = 900.0;
  double sample_hz = 1.0;
  double iteration_s = 30.0;   ///< one training iteration
  double dp_burst_s = 6.0;     ///< gradient-sync burst width
  double peak_gbps = 15.0;     ///< DP burst amplitude (1 s averaging)
  double pp_amplitude_gbps = 4.0;
  double rail_signature_gbps = 1.2;
  double noise_gbps = 0.25;
  bool idle = false;  ///< true = container not training (debug shell)
};

/// Synthesize the throughput series (Gbps per sample) of one endpoint.
[[nodiscard]] std::vector<double> burst_series(const EndpointRole& role,
                                               const ParallelismConfig& par,
                                               const BurstConfig& cfg,
                                               RngStream& rng);

/// Synthesize series for every endpoint of the layout (index-aligned with
/// layout.roles). Noise streams are forked per endpoint for determinism.
[[nodiscard]] std::vector<std::vector<double>> burst_series_for_layout(
    const TaskLayout& layout, const BurstConfig& cfg, RngStream& rng);

}  // namespace skh::workload
