#include "workload/collectives.h"

#include <algorithm>
#include <map>

namespace skh::workload {

namespace {

/// Normalize an unordered pair so (a, b) and (b, a) merge.
CommEdge normalized(Endpoint a, Endpoint b, double volume) {
  if (b < a) std::swap(a, b);
  return CommEdge{a, b, volume};
}

}  // namespace

std::vector<CommEdge> ring_allreduce(const std::vector<Endpoint>& members,
                                     double volume) {
  std::vector<CommEdge> out;
  const std::size_t n = members.size();
  if (n < 2) return out;
  if (n == 2) {
    out.push_back(normalized(members[0], members[1], volume));
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(normalized(members[i], members[(i + 1) % n], volume));
  }
  return out;
}

std::vector<CommEdge> pipeline_p2p(const std::vector<Endpoint>& stages,
                                   double volume) {
  std::vector<CommEdge> out;
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    out.push_back(normalized(stages[s], stages[s + 1], volume));
  }
  return out;
}

std::vector<CommEdge> double_binary_tree(const std::vector<Endpoint>& members,
                                         double volume) {
  std::vector<CommEdge> out;
  const std::size_t n = members.size();
  if (n < 2) return out;
  // Tree 1: heap-order binary tree over 0..n-1.
  for (std::size_t child = 1; child < n; ++child) {
    const std::size_t parent = (child - 1) / 2;
    out.push_back(normalized(members[parent], members[child], volume / 2.0));
  }
  // Tree 2: the mirrored tree (node i takes the role of node n-1-i), which
  // gives interior nodes of tree 1 leaf roles in tree 2 and vice versa.
  for (std::size_t child = 1; child < n; ++child) {
    const std::size_t parent = (child - 1) / 2;
    out.push_back(normalized(members[n - 1 - parent], members[n - 1 - child],
                             volume / 2.0));
  }
  return merge_edges(std::move(out));
}

std::vector<CommEdge> all_to_all(const std::vector<Endpoint>& members,
                                 double volume) {
  std::vector<CommEdge> out;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      out.push_back(normalized(members[i], members[j], volume));
    }
  }
  return out;
}

std::vector<CommEdge> merge_edges(std::vector<CommEdge> edges) {
  std::map<std::pair<Endpoint, Endpoint>, double> merged;
  for (const auto& e : edges) {
    const auto norm = normalized(e.a, e.b, e.volume);
    merged[{norm.a, norm.b}] += norm.volume;
  }
  std::vector<CommEdge> out;
  out.reserve(merged.size());
  for (const auto& [pair, volume] : merged) {
    out.push_back(CommEdge{pair.first, pair.second, volume});
  }
  return out;
}

}  // namespace skh::workload
