// Parallelism configurations and the mapping from a task's containers to
// parallelism coordinates (Figure 8).
//
// A dense-model task with TP x PP x DP GPUs places one TP group per
// container (TP-internal traffic rides NVLink and never touches the
// network). Containers line up as a PP x DP grid: container c of the task
// is pipeline stage (c % PP) of data-parallel replica (c / PP). Each GPU's
// bound RNIC sits on the host rail equal to its TP rank, which is what makes
// inter-host training traffic rail-aligned. MoE tasks add expert parallelism
// (EP) groups that exchange all-to-all traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/task.h"
#include "common/ids.h"

namespace skh::workload {

struct ParallelismConfig {
  std::uint32_t tp = 8;  ///< tensor parallel degree (= GPUs per container)
  std::uint32_t pp = 8;  ///< pipeline stages
  std::uint32_t dp = 8;  ///< data-parallel replicas
  std::uint32_t ep = 1;  ///< expert parallel degree (MoE); 1 = dense
  bool moe = false;      ///< expert-parallel all-to-all traffic present

  [[nodiscard]] std::uint32_t num_gpus() const noexcept {
    return tp * pp * dp;
  }
  [[nodiscard]] std::uint32_t num_containers() const noexcept {
    return pp * dp;
  }
  /// Validate internal consistency; throws std::invalid_argument otherwise.
  void validate() const;

  [[nodiscard]] std::string to_string() const;
};

/// The parallelism coordinates of one endpoint.
struct EndpointRole {
  Endpoint endpoint;
  std::uint32_t dp_rank = 0;  ///< which data-parallel replica
  std::uint32_t stage = 0;    ///< pipeline stage within the replica
  std::uint32_t rail = 0;     ///< TP rank == host rail of the bound RNIC
};

/// A task's full endpoint-to-role mapping.
struct TaskLayout {
  TaskId task;
  ParallelismConfig par;
  std::vector<EndpointRole> roles;  ///< one per endpoint of the task

  [[nodiscard]] const EndpointRole* role_of(const Endpoint& ep) const;
  /// Endpoints holding position (stage, rail) across all DP replicas — the
  /// "same position across different parallelism groups" set of §5.1.
  [[nodiscard]] std::vector<Endpoint> position_group(std::uint32_t stage,
                                                     std::uint32_t rail) const;
};

/// Build the layout for a placed task. `containers` must hold the task's
/// containers in index order; each container needs exactly `par.tp` RNICs.
/// Throws std::invalid_argument when the task shape disagrees with `par`.
[[nodiscard]] TaskLayout make_layout(
    const cluster::TaskInfo& task,
    const std::vector<cluster::ContainerInfo>& containers,
    const ParallelismConfig& par);

/// Pick a plausible parallelism config for a task of `num_gpus` GPUs with
/// `gpus_per_container` GPUs per container (TP = container size; DP/PP split
/// chosen near-square, preferring more DP).
[[nodiscard]] ParallelismConfig default_parallelism(
    std::uint32_t num_gpus, std::uint32_t gpus_per_container, bool moe = false);

}  // namespace skh::workload
