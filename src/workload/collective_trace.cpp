#include "workload/collective_trace.h"

#include <algorithm>

namespace skh::workload {

std::string_view to_string(CollectiveKind k) noexcept {
  switch (k) {
    case CollectiveKind::kRingAllReduce: return "ring-allreduce";
    case CollectiveKind::kPipelineP2p: return "pipeline-p2p";
    case CollectiveKind::kAllToAll: return "all-to-all";
  }
  return "unknown";
}

std::uint32_t CollectiveGroup::num_steps() const noexcept {
  const auto n = static_cast<std::uint32_t>(members.size());
  if (n < 2) return 0;
  switch (kind) {
    case CollectiveKind::kRingAllReduce:
      // Reduce-scatter + all-gather: 2(n-1) ring rotations.
      return 2 * (n - 1);
    case CollectiveKind::kPipelineP2p:
      // Forward activations down the chain, gradients back up.
      return 2 * (n - 1);
    case CollectiveKind::kAllToAll:
      // n-1 pairwise exchange rounds.
      return n - 1;
  }
  return 0;
}

std::uint32_t pipeline_participant(std::uint32_t n, std::uint32_t step) {
  // Forward handoffs 0..n-2 are received by stages 1..n-1; backward
  // handoffs n-1..2n-3 are received by stages n-2..0.
  if (step < n - 1) return step + 1;
  return (n - 2) - (step - (n - 1));
}

std::vector<std::uint32_t> dep_ranks(CollectiveKind kind, std::uint32_t n,
                                     std::uint32_t step, std::uint32_t rank) {
  std::vector<std::uint32_t> deps;
  if (step == 0 || n < 2) return deps;
  switch (kind) {
    case CollectiveKind::kRingAllReduce: {
      const std::uint32_t pred = (rank + n - 1) % n;
      deps.push_back(rank);
      if (pred != rank) deps.push_back(pred);
      break;
    }
    case CollectiveKind::kPipelineP2p:
      deps.push_back(pipeline_participant(n, step - 1));
      break;
    case CollectiveKind::kAllToAll: {
      // Exchange peer at step s: (rank + s + 1) mod n. The previous round
      // must have finished on both ends of the current exchange.
      const std::uint32_t peer = (rank + step + 1) % n;
      deps.push_back(rank);
      if (peer != rank) deps.push_back(peer);
      break;
    }
  }
  std::sort(deps.begin(), deps.end());
  return deps;
}

namespace {

void push_group(std::vector<CollectiveGroup>& out, CollectiveKind kind,
                std::vector<Endpoint> members, const TaskLayout& layout) {
  if (members.size() < 2) return;
  CollectiveGroup g;
  g.id = static_cast<std::uint32_t>(out.size());
  g.kind = kind;
  g.container_index.reserve(members.size());
  for (const Endpoint& ep : members) {
    const EndpointRole* role = layout.role_of(ep);
    // Container index within the task: the PP x DP grid coordinate
    // (dp_rank * pp + stage) — the address host-side fault plans use.
    g.container_index.push_back(role == nullptr
                                    ? 0u
                                    : role->dp_rank * layout.par.pp +
                                          role->stage);
  }
  g.members = std::move(members);
  out.push_back(std::move(g));
}

}  // namespace

std::vector<CollectiveGroup> build_collective_groups(
    const TaskLayout& layout) {
  std::vector<CollectiveGroup> out;
  const auto& par = layout.par;

  // DP rings per (stage, rail), members ordered by dp_rank — the same
  // canonical 0-1-...-(dp-1)-0 ring the traffic matrix builds.
  if (par.dp > 1) {
    for (std::uint32_t stage = 0; stage < par.pp; ++stage) {
      for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
        std::vector<Endpoint> members(par.dp, Endpoint{});
        for (const auto& r : layout.roles) {
          if (r.stage == stage && r.rail == rail) {
            members[r.dp_rank] = r.endpoint;
          }
        }
        push_group(out, CollectiveKind::kRingAllReduce, std::move(members),
                   layout);
      }
    }
  }

  // PP chains per (dp_rank, rail) in stage order.
  if (par.pp > 1) {
    for (std::uint32_t d = 0; d < par.dp; ++d) {
      for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
        std::vector<Endpoint> stages(par.pp, Endpoint{});
        for (const auto& r : layout.roles) {
          if (r.dp_rank == d && r.rail == rail) stages[r.stage] = r.endpoint;
        }
        push_group(out, CollectiveKind::kPipelineP2p, std::move(stages),
                   layout);
      }
    }
  }

  // EP (MoE): all-to-all per (stage, rail, expert block of `ep`
  // consecutive DP replicas).
  if (par.moe && par.ep > 1) {
    for (std::uint32_t stage = 0; stage < par.pp; ++stage) {
      for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
        for (std::uint32_t g = 0; g < par.dp / par.ep; ++g) {
          std::vector<Endpoint> group;
          for (const auto& r : layout.roles) {
            if (r.stage == stage && r.rail == rail &&
                r.dp_rank / par.ep == g) {
              group.push_back(r.endpoint);
            }
          }
          push_group(out, CollectiveKind::kAllToAll, std::move(group),
                     layout);
        }
      }
    }
  }
  return out;
}

CollectiveTraceGenerator::CollectiveTraceGenerator(
    std::vector<CollectiveGroup> groups, CollectiveTraceConfig cfg,
    RngStream rng)
    : groups_(std::move(groups)), cfg_(cfg), rng_(rng) {}

std::vector<StepRecord> CollectiveTraceGenerator::emit_iteration(
    std::uint32_t iteration, SimTime at) {
  std::vector<StepRecord> out;
  RngStream iter_rng = rng_.fork("iteration").fork(iteration);
  for (const CollectiveGroup& g : groups_) {
    const auto n = static_cast<std::uint32_t>(g.members.size());
    const std::uint32_t steps = g.num_steps();
    if (steps == 0) continue;
    // Completion state of the previous step per rank. Step 0 has no
    // dependencies, so "previous" starts as all-done at `at`.
    std::vector<char> prev_done(n, 1);
    std::vector<SimTime> prev_end(n, at);
    std::vector<char> cur_done(n, 0);
    std::vector<SimTime> cur_end(n, at);
    for (std::uint32_t step = 0; step < steps; ++step) {
      std::fill(cur_done.begin(), cur_done.end(), 0);
      const bool pipeline = g.kind == CollectiveKind::kPipelineP2p;
      const std::uint32_t lone =
          pipeline ? pipeline_participant(n, step) : 0;
      for (std::uint32_t rank = 0; rank < n; ++rank) {
        if (pipeline && rank != lone) continue;
        // Draw jitter unconditionally: the stream must stay aligned
        // whether or not this rank hangs or is blocked, so a fault in
        // iteration i never perturbs iteration i+1's durations.
        const double jitter = iter_rng.uniform(-cfg_.jitter_frac,
                                               cfg_.jitter_frac);
        StepRecord rec;
        rec.group = g.id;
        rec.iteration = iteration;
        rec.step = step;
        rec.rank = rank;
        rec.endpoint = g.members[rank];
        const auto deps = dep_ranks(g.kind, n, step, rank);
        SimTime ready = at;
        bool blocked = false;
        for (const std::uint32_t d : deps) {
          if (!prev_done[d]) {
            blocked = true;
            break;
          }
          ready = std::max(ready, prev_end[d]);
        }
        if (blocked) {
          rec.start = at;
          rec.end = at;
          out.push_back(rec);
          continue;
        }
        rec.started = true;
        rec.start = ready;
        // Host-side fault: a hung rank's step starts but never ends —
        // exactly the signature the probe mesh cannot see.
        const HostEffect host =
            host_ ? host_(g.container_index[rank], ready) : HostEffect{};
        std::optional<double> net_us{0.0};
        if (net_) net_us = net_(rec.endpoint, ready);
        if (host.hang || !net_us.has_value()) {
          rec.end = ready;
          out.push_back(rec);
          continue;
        }
        double dur_us = cfg_.step_base.to_seconds() * 1e6 * (1.0 + jitter);
        dur_us *= std::max(1.0, host.slowdown);
        dur_us += *net_us;
        rec.end = ready + SimTime::micros(dur_us);
        rec.done = true;
        cur_done[rank] = 1;
        cur_end[rank] = rec.end;
        out.push_back(rec);
      }
      if (pipeline) {
        // Non-participants idle through the step; their previous state
        // carries forward so later handoffs see the chain correctly.
        for (std::uint32_t rank = 0; rank < n; ++rank) {
          if (rank == lone) continue;
          cur_done[rank] = prev_done[rank];
          cur_end[rank] = prev_end[rank];
        }
      }
      prev_done = cur_done;
      prev_end = cur_end;
    }
  }
  return out;
}

namespace {

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint64_t fingerprint_records(std::span<const StepRecord> records,
                                  std::uint64_t h) {
  for (const StepRecord& r : records) {
    h = fnv_mix(h, r.group);
    h = fnv_mix(h, r.iteration);
    h = fnv_mix(h, r.step);
    h = fnv_mix(h, r.rank);
    h = fnv_mix(h, r.endpoint.container.value());
    h = fnv_mix(h, r.endpoint.rnic.value());
    h = fnv_mix(h, static_cast<std::uint64_t>(r.start.raw_nanos()));
    h = fnv_mix(h, static_cast<std::uint64_t>(r.end.raw_nanos()));
    h = fnv_mix(h, (r.started ? 1u : 0u) | (r.done ? 2u : 0u));
  }
  return h;
}

}  // namespace skh::workload
