#include "workload/traffic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace skh::workload {

TrafficMatrix::TrafficMatrix(std::vector<CommEdge> edges)
    : edges_(merge_edges(std::move(edges))) {}

bool TrafficMatrix::communicates(const Endpoint& a, const Endpoint& b) const {
  Endpoint lo = a, hi = b;
  if (hi < lo) std::swap(lo, hi);
  return std::any_of(edges_.begin(), edges_.end(), [&](const CommEdge& e) {
    return e.a == lo && e.b == hi;
  });
}

double TrafficMatrix::density(std::size_t num_endpoints) const {
  if (num_endpoints < 2) return 0.0;
  const double all_pairs = static_cast<double>(num_endpoints) *
                           static_cast<double>(num_endpoints - 1) / 2.0;
  return static_cast<double>(edges_.size()) / all_pairs;
}

std::vector<Endpoint> TrafficMatrix::peers_of(const Endpoint& e) const {
  std::vector<Endpoint> out;
  for (const auto& edge : edges_) {
    if (edge.a == e) out.push_back(edge.b);
    if (edge.b == e) out.push_back(edge.a);
  }
  return out;
}

TrafficMatrix build_traffic_matrix(const TaskLayout& layout,
                                   const TrafficVolumes& volumes) {
  std::vector<CommEdge> edges;
  const auto& par = layout.par;

  // DP: ring all-reduce across each (stage, rail) position group. Members
  // are ordered by dp_rank so the ring is the canonical 0-1-...-(dp-1)-0.
  for (std::uint32_t stage = 0; stage < par.pp; ++stage) {
    for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
      std::vector<Endpoint> members(par.dp, Endpoint{});
      for (const auto& r : layout.roles) {
        if (r.stage == stage && r.rail == rail) {
          members[r.dp_rank] = r.endpoint;
        }
      }
      auto ring = ring_allreduce(members, volumes.dp_allreduce);
      edges.insert(edges.end(), ring.begin(), ring.end());
      if (volumes.dp_tree) {
        auto tree = double_binary_tree(members, volumes.dp_tree_volume);
        edges.insert(edges.end(), tree.begin(), tree.end());
      }
    }
  }

  // PP: stage chain for every (dp_rank, rail).
  for (std::uint32_t d = 0; d < par.dp; ++d) {
    for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
      std::vector<Endpoint> stages(par.pp, Endpoint{});
      for (const auto& r : layout.roles) {
        if (r.dp_rank == d && r.rail == rail) stages[r.stage] = r.endpoint;
      }
      auto chain = pipeline_p2p(stages, volumes.pp_p2p);
      edges.insert(edges.end(), chain.begin(), chain.end());
    }
  }

  // EP (MoE): all-to-all inside each expert group. Expert groups partition
  // the DP dimension into blocks of `ep` consecutive replicas, per
  // (stage, rail) position.
  if (par.moe && par.ep > 1) {
    for (std::uint32_t stage = 0; stage < par.pp; ++stage) {
      for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
        for (std::uint32_t g = 0; g < par.dp / par.ep; ++g) {
          std::vector<Endpoint> group;
          for (const auto& r : layout.roles) {
            if (r.stage == stage && r.rail == rail &&
                r.dp_rank / par.ep == g) {
              group.push_back(r.endpoint);
            }
          }
          auto a2a = all_to_all(group, volumes.ep_all_to_all);
          edges.insert(edges.end(), a2a.begin(), a2a.end());
        }
      }
    }
  }
  return TrafficMatrix(std::move(edges));
}

std::vector<double> burst_series(const EndpointRole& role,
                                 const ParallelismConfig& par,
                                 const BurstConfig& cfg, RngStream& rng) {
  const auto n = static_cast<std::size_t>(cfg.duration_s * cfg.sample_hz);
  std::vector<double> out(n, 0.0);
  const double dt = 1.0 / cfg.sample_hz;
  // Pipeline stage s starts its activity later than stage s-1: the forward
  // pass reaches it after the earlier stages compute (§5.1 time shift).
  const double stage_shift =
      par.pp > 1 ? 0.5 * cfg.iteration_s * static_cast<double>(role.stage) /
                       static_cast<double>(par.pp)
                 : 0.0;
  // Stage-dependent micro-burst cadence: deeper stages exchange at a
  // different micro-batch rhythm, so positions differ in harmonic content
  // (Figure 13's two feature classes).
  const double pp_period =
      cfg.iteration_s / (6.0 + 2.0 * static_cast<double>(role.stage));
  // Rail-dependent chunk-scheduling signature frequency.
  const double rail_period =
      cfg.iteration_s / (3.0 + 1.5 * static_cast<double>(role.rail));

  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    double v = std::max(0.0, rng.normal(0.05, cfg.noise_gbps));
    if (!cfg.idle) {
      const double phase =
          std::fmod(t - stage_shift + 10.0 * cfg.iteration_s,
                    cfg.iteration_s);
      const bool in_dp_burst = phase >= cfg.iteration_s - cfg.dp_burst_s;
      if (in_dp_burst) {
        // Gradient synchronization: the dominant burst.
        v += cfg.peak_gbps * (0.85 + 0.15 * rng.uniform());
      } else {
        // Pipeline micro-bursts (half-duty square wave at the stage cadence).
        const double pp_phase = std::fmod(t - stage_shift + 1e3, pp_period);
        if (pp_phase < pp_period * 0.5) {
          v += cfg.pp_amplitude_gbps * (0.9 + 0.1 * rng.uniform());
        }
        // Rail chunk-scheduling signature (small, position-identifying).
        const double rail_phase = std::fmod(t + 1e3, rail_period);
        if (rail_phase < rail_period * 0.4) v += cfg.rail_signature_gbps;
        // MoE expert all-to-all: extra fast cadence during compute phase.
        if (par.moe && par.ep > 1) {
          const double ep_period = cfg.iteration_s / 12.0;
          const double ep_phase = std::fmod(t - stage_shift + 1e3, ep_period);
          if (ep_phase < ep_period * 0.5) v += 2.0;
        }
      }
    }
    out[i] = v;
  }
  return out;
}

std::vector<std::vector<double>> burst_series_for_layout(
    const TaskLayout& layout, const BurstConfig& cfg, RngStream& rng) {
  std::vector<std::vector<double>> out;
  out.reserve(layout.roles.size());
  for (std::size_t i = 0; i < layout.roles.size(); ++i) {
    RngStream sub = rng.fork(static_cast<std::uint64_t>(i));
    out.push_back(burst_series(layout.roles[i], layout.par, cfg, sub));
  }
  return out;
}

}  // namespace skh::workload
