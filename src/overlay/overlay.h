// The VXLAN/OVS overlay network model (§2, Figure 1).
//
// Each host runs one OVS instance; each endpoint (container, RNIC) attached
// to a host materializes a chain of virtual components:
//
//   container netns -> veth -> OVS bridge port -> VXLAN tunnel port -> RNIC
//   VF -> (underlay) -> peer RNIC VF -> VXLAN -> OVS -> veth -> netns
//
// Tenant isolation follows VXLAN semantics: endpoints attached under the
// same VNI (one VNI per training task) are mutually reachable; nothing else
// is. Forwarding between consecutive components is *derived* from this
// structure — per-pair flow rules are not materialized (a 2048-endpoint
// task would need ~38M of them) — while faults are stored as exceptions:
// deleted rules (unreachability), rules corrupted into loops, and
// RNIC-offload tables desynchronized from OVS (the Figure 18 case).
// Table dumps (`ovs_rules_for` / `offloaded_rules_for`) regenerate the
// rules a production `ovs-dpctl dump-flows` would show.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"

namespace skh::overlay {

enum class NodeKind : std::uint8_t {
  kContainerNs,  ///< container network namespace
  kVeth,         ///< CNI veth pair end
  kOvsPort,      ///< OVS bridge port
  kVxlanTunnel,  ///< VXLAN en/de-capsulation point
  kRnicVf,       ///< SR-IOV virtual function on the RNIC
};

[[nodiscard]] std::string_view to_string(NodeKind k) noexcept;

struct OverlayNode {
  VPortId id;
  NodeKind kind = NodeKind::kContainerNs;
  HostId host;
  ContainerId container;  ///< invalid for host-scoped nodes (OVS/VXLAN)
  RnicId rnic;            ///< valid for per-endpoint nodes
};

/// A flow-table rule as a dump would render it: at node `from`, traffic for
/// destination endpoint `dst` forwards to node `to`.
struct FlowRule {
  VPortId from;
  Endpoint dst;
  VPortId to;

  friend constexpr auto operator<=>(const FlowRule&,
                                    const FlowRule&) noexcept = default;
};

/// The chain of overlay nodes an endpoint contributes (send direction).
struct EndpointChain {
  VPortId netns;
  VPortId veth;
  VPortId ovs;     ///< host-scoped, shared by all endpoints on the host
  VPortId vxlan;   ///< host-scoped
  VPortId vf;
};

class OverlayNetwork {
 public:
  /// Register a host: creates its OVS bridge and VXLAN tunnel nodes.
  void add_host(HostId host);

  /// Attach an endpoint on `host` under tenant/task VNI `vni`; endpoints
  /// sharing a VNI (except same-container ones, which ride NVLink) are
  /// mutually reachable.
  void attach_endpoint(Endpoint ep, HostId host, std::uint32_t vni);

  /// Remove an endpoint; fault exceptions touching it are dropped.
  void detach_endpoint(Endpoint ep);

  // --- the analyzer-facing forwarding interface ---------------------------
  /// One step of the logical forwarding chain of the (src, dst) flow: where
  /// does `current` send it? nullopt = no matching rule (broken chain or
  /// no connectivity).
  [[nodiscard]] std::optional<VPortId> next_hop(const Endpoint& src,
                                                const Endpoint& dst,
                                                VPortId current) const;

  /// The ordered node list of the (src, dst) flow — the L_O of Algorithm 1.
  [[nodiscard]] std::vector<VPortId> overlay_path(Endpoint src,
                                                  Endpoint dst) const;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const OverlayNode& node(VPortId id) const;
  [[nodiscard]] bool attached(Endpoint ep) const;
  [[nodiscard]] bool same_vni(const Endpoint& a, const Endpoint& b) const;
  [[nodiscard]] const EndpointChain& chain_of(Endpoint ep) const;
  /// Number of flow-table items OVS would hold on `host` (Figure 6):
  /// nine rules per connected directed flow touching the host, minus
  /// deleted ones.
  [[nodiscard]] std::size_t flow_table_size(HostId host) const;
  [[nodiscard]] std::size_t total_nodes() const noexcept {
    return nodes_.size();
  }

  // --- RNIC offload (eSwitch) ----------------------------------------------
  /// Dump the OVS-resident rules that involve `rnic`'s VFs.
  [[nodiscard]] std::vector<FlowRule> ovs_rules_for(RnicId rnic) const;
  /// Dump the RNIC-offloaded copy of those rules.
  [[nodiscard]] std::vector<FlowRule> offloaded_rules_for(RnicId rnic) const;
  /// Inconsistent rules: symmetric difference of the two dumps. Empty =
  /// consistent (the "validate RNICs" step of §5.3). O(rules of this RNIC).
  [[nodiscard]] std::vector<FlowRule> offload_inconsistencies(
      RnicId rnic) const;
  /// O(1): has this RNIC's offload copy been invalidated?
  [[nodiscard]] bool offload_desynced(RnicId rnic) const;

  // --- fault hooks ----------------------------------------------------------
  /// Delete the rule at `from` for destination `dst` (broken chain).
  void break_rule(VPortId from, Endpoint dst);
  /// Redirect the rule at `from` for `dst` to `loop_to` (forwarding loop).
  void corrupt_rule_to_loop(VPortId from, Endpoint dst, VPortId loop_to);
  /// Invalidate the RNIC-offloaded copies of rules touching `rnic` without
  /// touching OVS state — the Fig. 18 inconsistency. Affected traffic is
  /// punted to the software slow path (high latency), which the probe layer
  /// models; this call only desynchronizes the dumped tables.
  void invalidate_offload(RnicId rnic);
  /// Re-synchronize the offload copy with OVS (repair / RNIC reset).
  void resync_offload(RnicId rnic);

 private:
  struct RuleKey {
    VPortId from;
    Endpoint dst;
    friend constexpr auto operator<=>(const RuleKey&,
                                      const RuleKey&) noexcept = default;
  };
  struct RuleKeyHash {
    std::size_t operator()(const RuleKey& k) const noexcept {
      return std::hash<skh::VPortId>{}(k.from) * 1315423911u ^
             std::hash<skh::Endpoint>{}(k.dst);
    }
  };

  VPortId new_node(NodeKind kind, HostId host, ContainerId container,
                   RnicId rnic);
  /// Structural next hop, before fault exceptions.
  [[nodiscard]] std::optional<VPortId> structural_next(const Endpoint& src,
                                                       const Endpoint& dst,
                                                       VPortId current) const;
  /// All endpoints an endpoint can talk to (same VNI, other containers).
  [[nodiscard]] std::vector<Endpoint> peers_of(const Endpoint& ep) const;

  std::vector<OverlayNode> nodes_;
  std::unordered_map<HostId, VPortId> ovs_of_host_;
  std::unordered_map<HostId, VPortId> vxlan_of_host_;
  std::unordered_map<Endpoint, EndpointChain> chains_;
  std::unordered_map<Endpoint, HostId> host_of_ep_;
  std::unordered_map<Endpoint, std::uint32_t> vni_of_ep_;
  /// VNI membership (for peer enumeration and table-size accounting).
  std::unordered_map<std::uint32_t, std::vector<Endpoint>> members_of_vni_;
  std::unordered_map<ContainerId, std::size_t> container_ep_count_;
  /// Fault exceptions.
  std::unordered_set<RuleKey, RuleKeyHash> broken_rules_;
  std::unordered_map<RuleKey, VPortId, RuleKeyHash> corrupted_rules_;
  std::unordered_map<HostId, std::size_t> broken_per_host_;
  std::unordered_map<RnicId, bool> offload_valid_;
};

}  // namespace skh::overlay
