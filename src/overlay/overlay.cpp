#include "overlay/overlay.h"

#include <algorithm>
#include <stdexcept>

namespace skh::overlay {

std::string_view to_string(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::kContainerNs: return "netns";
    case NodeKind::kVeth: return "veth";
    case NodeKind::kOvsPort: return "ovs";
    case NodeKind::kVxlanTunnel: return "vxlan";
    case NodeKind::kRnicVf: return "vf";
  }
  return "unknown";
}

VPortId OverlayNetwork::new_node(NodeKind kind, HostId host,
                                 ContainerId container, RnicId rnic) {
  const VPortId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(OverlayNode{id, kind, host, container, rnic});
  return id;
}

void OverlayNetwork::add_host(HostId host) {
  if (ovs_of_host_.contains(host)) return;
  ovs_of_host_[host] =
      new_node(NodeKind::kOvsPort, host, ContainerId{}, RnicId{});
  vxlan_of_host_[host] =
      new_node(NodeKind::kVxlanTunnel, host, ContainerId{}, RnicId{});
}

void OverlayNetwork::attach_endpoint(Endpoint ep, HostId host,
                                     std::uint32_t vni) {
  add_host(host);
  if (chains_.contains(ep)) {
    throw std::invalid_argument("attach_endpoint: already attached");
  }
  EndpointChain c;
  c.netns = new_node(NodeKind::kContainerNs, host, ep.container, ep.rnic);
  c.veth = new_node(NodeKind::kVeth, host, ep.container, ep.rnic);
  c.ovs = ovs_of_host_.at(host);
  c.vxlan = vxlan_of_host_.at(host);
  c.vf = new_node(NodeKind::kRnicVf, host, ep.container, ep.rnic);
  chains_[ep] = c;
  host_of_ep_[ep] = host;
  vni_of_ep_[ep] = vni;
  members_of_vni_[vni].push_back(ep);
  ++container_ep_count_[ep.container];
  if (!offload_valid_.contains(ep.rnic)) offload_valid_[ep.rnic] = true;
}

void OverlayNetwork::detach_endpoint(Endpoint ep) {
  const auto it = chains_.find(ep);
  if (it == chains_.end()) return;
  const EndpointChain chain = it->second;
  const HostId host = host_of_ep_.at(ep);
  const std::uint32_t vni = vni_of_ep_.at(ep);

  // Drop fault exceptions that reference this endpoint's nodes or that
  // target flows destined to it.
  auto touches = [&](const RuleKey& k) {
    if (k.dst == ep) return true;
    for (VPortId n : {chain.netns, chain.veth, chain.vf}) {
      if (k.from == n) return true;
    }
    return false;
  };
  for (auto bit = broken_rules_.begin(); bit != broken_rules_.end();) {
    if (touches(*bit)) {
      auto& count = broken_per_host_[node(bit->from).host];
      if (count > 0) --count;
      bit = broken_rules_.erase(bit);
    } else {
      ++bit;
    }
  }
  for (auto cit = corrupted_rules_.begin(); cit != corrupted_rules_.end();) {
    if (touches(cit->first)) {
      cit = corrupted_rules_.erase(cit);
    } else {
      ++cit;
    }
  }

  auto& members = members_of_vni_[vni];
  members.erase(std::remove(members.begin(), members.end(), ep),
                members.end());
  auto& cc = container_ep_count_[ep.container];
  if (cc > 0) --cc;
  chains_.erase(it);
  host_of_ep_.erase(ep);
  vni_of_ep_.erase(ep);
  (void)host;
}

std::vector<Endpoint> OverlayNetwork::peers_of(const Endpoint& ep) const {
  std::vector<Endpoint> out;
  const auto vit = vni_of_ep_.find(ep);
  if (vit == vni_of_ep_.end()) return out;
  for (const Endpoint& other : members_of_vni_.at(vit->second)) {
    if (other.container != ep.container) out.push_back(other);
  }
  return out;
}

bool OverlayNetwork::same_vni(const Endpoint& a, const Endpoint& b) const {
  const auto ia = vni_of_ep_.find(a);
  const auto ib = vni_of_ep_.find(b);
  return ia != vni_of_ep_.end() && ib != vni_of_ep_.end() &&
         ia->second == ib->second;
}

std::optional<VPortId> OverlayNetwork::structural_next(
    const Endpoint& src, const Endpoint& dst, VPortId current) const {
  if (!attached(src) || !attached(dst)) return std::nullopt;
  if (!same_vni(src, dst) || src.container == dst.container) {
    return std::nullopt;  // tenant isolation / NVLink-internal traffic
  }
  const EndpointChain& cs = chains_.at(src);
  const EndpointChain& cd = chains_.at(dst);
  if (current == cs.netns) return cs.veth;
  if (current == cs.veth) return cs.ovs;
  if (current == cs.ovs) return cs.vxlan;
  if (current == cs.vxlan) return cs.vf;
  if (current == cs.vf) return cd.vf;  // encapsulated underlay crossing
  if (current == cd.vf) return cd.vxlan;
  if (current == cd.vxlan) return cd.ovs;
  if (current == cd.ovs) return cd.veth;
  if (current == cd.veth) return cd.netns;
  return std::nullopt;  // node not on this flow's chain
}

std::optional<VPortId> OverlayNetwork::next_hop(const Endpoint& src,
                                                const Endpoint& dst,
                                                VPortId current) const {
  const RuleKey key{current, dst};
  if (broken_rules_.contains(key)) return std::nullopt;
  const auto cit = corrupted_rules_.find(key);
  if (cit != corrupted_rules_.end()) return cit->second;
  return structural_next(src, dst, current);
}

std::vector<VPortId> OverlayNetwork::overlay_path(Endpoint src,
                                                  Endpoint dst) const {
  const EndpointChain& cs = chain_of(src);
  const EndpointChain& cd = chain_of(dst);
  return {cs.netns, cs.veth, cs.ovs,  cs.vxlan, cs.vf,
          cd.vf,    cd.vxlan, cd.ovs, cd.veth,  cd.netns};
}

const OverlayNode& OverlayNetwork::node(VPortId id) const {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("OverlayNetwork::node: bad id");
  }
  return nodes_[id.value()];
}

bool OverlayNetwork::attached(Endpoint ep) const {
  return chains_.contains(ep);
}

const EndpointChain& OverlayNetwork::chain_of(Endpoint ep) const {
  const auto it = chains_.find(ep);
  if (it == chains_.end()) {
    throw std::out_of_range("OverlayNetwork::chain_of: endpoint not attached");
  }
  return it->second;
}

std::size_t OverlayNetwork::flow_table_size(HostId host) const {
  // Per directed connected flow (s -> d): 5 rules on s's host (netns, veth,
  // ovs, vxlan, vf-tunnel) and 4 on d's host (vf, vxlan, ovs, veth).
  std::size_t total = 0;
  for (const auto& [ep, h] : host_of_ep_) {
    if (h != host) continue;
    const std::size_t peers = peers_of(ep).size();
    total += peers * 5   // this endpoint sending
             + peers * 4;  // this endpoint receiving
  }
  const auto bit = broken_per_host_.find(host);
  const std::size_t broken =
      bit == broken_per_host_.end() ? 0 : bit->second;
  return total > broken ? total - broken : 0;
}

std::vector<FlowRule> OverlayNetwork::ovs_rules_for(RnicId rnic) const {
  // Regenerate the rules whose from/to involves a VF of `rnic`: per peer
  // flow, the encap rule (vxlan -> vf), the tunnel rule (vf -> peer vf),
  // the peer-side tunnel arrival (peer vf -> vf) and the decap rule
  // (vf -> vxlan).
  std::vector<FlowRule> out;
  for (const auto& [ep, chain] : chains_) {
    if (ep.rnic != rnic) continue;
    for (const Endpoint& peer : peers_of(ep)) {
      const EndpointChain& pc = chains_.at(peer);
      const FlowRule candidates[] = {
          {chain.vxlan, peer, chain.vf},  // encap toward peer
          {chain.vf, peer, pc.vf},        // tunnel toward peer
          {pc.vf, ep, chain.vf},          // peer's tunnel toward us
          {chain.vf, ep, chain.vxlan},    // decap for inbound flow
      };
      for (const auto& r : candidates) {
        const RuleKey key{r.from, r.dst};
        if (broken_rules_.contains(key)) continue;
        const auto cit = corrupted_rules_.find(key);
        out.push_back(cit == corrupted_rules_.end()
                          ? r
                          : FlowRule{r.from, r.dst, cit->second});
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<FlowRule> OverlayNetwork::offloaded_rules_for(RnicId rnic) const {
  const auto valid_it = offload_valid_.find(rnic);
  if (valid_it != offload_valid_.end() && !valid_it->second) return {};
  return ovs_rules_for(rnic);
}

std::vector<FlowRule> OverlayNetwork::offload_inconsistencies(
    RnicId rnic) const {
  const auto ovs = ovs_rules_for(rnic);
  const auto off = offloaded_rules_for(rnic);
  std::vector<FlowRule> out;
  std::set_symmetric_difference(ovs.begin(), ovs.end(), off.begin(), off.end(),
                                std::back_inserter(out));
  return out;
}

bool OverlayNetwork::offload_desynced(RnicId rnic) const {
  const auto it = offload_valid_.find(rnic);
  return it != offload_valid_.end() && !it->second;
}

void OverlayNetwork::break_rule(VPortId from, Endpoint dst) {
  const RuleKey key{from, dst};
  if (broken_rules_.insert(key).second) {
    ++broken_per_host_[node(from).host];
  }
  corrupted_rules_.erase(key);
}

void OverlayNetwork::corrupt_rule_to_loop(VPortId from, Endpoint dst,
                                          VPortId loop_to) {
  const RuleKey key{from, dst};
  if (broken_rules_.erase(key) > 0) {
    auto& count = broken_per_host_[node(from).host];
    if (count > 0) --count;
  }
  corrupted_rules_[key] = loop_to;
}

void OverlayNetwork::invalidate_offload(RnicId rnic) {
  offload_valid_[rnic] = false;
}

void OverlayNetwork::resync_offload(RnicId rnic) {
  offload_valid_[rnic] = true;
}

}  // namespace skh::overlay
