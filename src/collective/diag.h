// Collective-level slow/hang diagnosis: the second signal plane.
//
// Consumes the per-step traces of workload/collective_trace.h and emits
// verdicts in CCL-D's two classes:
//   hang — a rank whose step's dependencies were satisfied but whose step
//          never completed within the timeout. The blocked ranks behind it
//          form its wait-for chain (Mycroft's dependency tracing): the
//          verdict names the stalled root and implicates the chain, not
//          the other way round.
//   slow — a rank whose step durations keep exceeding the sibling median
//          by the straggler ratio. Sibling-relative timing is the point:
//          an absolute threshold would alias model-size effects; the
//          siblings run the same step of the same collective, so the
//          median is the perfect control group.
// State is bounded per registered group (a few vectors sized by rank
// count, a pending set bounded by one iteration's incomplete steps),
// mirroring the detector's flat-table discipline: no per-ingest
// allocation in steady state, value-semantic so the hunter's blackout
// checkpoint copies it wholesale.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "workload/collective_trace.h"

namespace skh::collective {

enum class VerdictKind : std::uint8_t {
  kHang,  ///< dependency-aware timeout: root stalled, chain blocked
  kSlow,  ///< sibling-relative straggler (strike-confirmed)
};

[[nodiscard]] std::string_view to_string(VerdictKind k) noexcept;

/// One diagnosis: which rank of which group stalled or straggled, and who
/// waits behind it.
struct CollectiveVerdict {
  std::uint32_t group = 0;
  VerdictKind kind = VerdictKind::kHang;
  std::uint32_t iteration = 0;
  std::uint32_t step = 0;
  std::uint32_t root_rank = 0;
  Endpoint root;                     ///< the implicated rank's endpoint
  std::uint32_t root_container = 0;  ///< its container index in the task
  /// The wait-for chain: blocked ranks' endpoints in (step, rank) order,
  /// bounded by CollectiveDiagConfig::max_waiters. Empty for kSlow.
  std::vector<Endpoint> waiters;
  SimTime detected_at;
  /// Seconds stalled for kHang; duration/median ratio for kSlow.
  double severity = 0.0;
};

struct CollectiveDiagConfig {
  /// A started-but-incomplete step older than this is a hang. Must be
  /// shorter than the emitter's iteration period or hangs are only seen
  /// one iteration late.
  SimTime hang_timeout = SimTime::seconds(25);
  /// A step duration beyond ratio * sibling-median is a straggler strike.
  double straggler_ratio = 3.0;
  /// Consecutive strikes before a kSlow verdict (transient filtering —
  /// one slow step is noise, a streak is a sick host).
  std::uint32_t straggler_strikes = 3;
  /// Wait-for chain length cap in a verdict (bounded evidence).
  std::size_t max_waiters = 16;
};

/// Per-group diagnosis state machine. Copyable by design: the hunter's
/// blackout checkpoint snapshots it by value, exactly like the monitors.
class CollectiveDiagnoser {
 public:
  explicit CollectiveDiagnoser(CollectiveDiagConfig cfg = {}) : cfg_(cfg) {}

  /// Register a communicator; sizes its per-rank state once (plan time),
  /// so ingest allocates nothing. Groups must be registered in id order
  /// (build_collective_groups emits them that way).
  void register_group(const workload::CollectiveGroup& g);

  /// Feed one emitted batch (typically one iteration) and append any
  /// verdicts to `out`. `now` is the ingest instant the hang timeout is
  /// measured against. Verdict order is deterministic: groups ascending,
  /// hang before slow within a group.
  void ingest(std::span<const workload::StepRecord> records, SimTime now,
              std::vector<CollectiveVerdict>& out);

  /// Cold reset: drop strike counters, latches, and pending records but
  /// keep registrations — the analyzer process died, the communicators
  /// didn't. Warm restarts restore the full object from a checkpoint
  /// instead (it is copyable for exactly that).
  void reset_state();

  [[nodiscard]] std::size_t num_groups() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] std::uint64_t steps_ingested() const noexcept {
    return steps_ingested_;
  }
  [[nodiscard]] std::uint64_t hang_verdicts() const noexcept {
    return hang_verdicts_;
  }
  [[nodiscard]] std::uint64_t slow_verdicts() const noexcept {
    return slow_verdicts_;
  }

 private:
  struct GroupState {
    workload::CollectiveKind kind = workload::CollectiveKind::kRingAllReduce;
    std::vector<Endpoint> members;
    std::vector<std::uint32_t> container_index;
    /// Straggler strike counter and reported-latch per rank.
    std::vector<std::uint16_t> strikes;
    std::vector<std::uint8_t> slow_reported;
    /// One hang verdict per stall episode; cleared when an iteration of
    /// the group completes fully again.
    bool hang_reported = false;
    /// Incomplete records of the most recent ingested iteration (bounded
    /// by the group's step x rank grid; typically empty).
    std::vector<workload::StepRecord> pending;
    /// Scratch (reused across ingests, no steady-state allocation):
    /// per-step sibling durations and per-rank worst ratios.
    std::vector<double> durations;
    std::vector<double> ratio_scratch;
    std::vector<std::uint8_t> seen_scratch;
  };

  void diagnose_group(GroupState& g, std::uint32_t gid, SimTime now,
                      std::vector<CollectiveVerdict>& out);

  CollectiveDiagConfig cfg_;
  std::vector<GroupState> groups_;
  std::uint64_t steps_ingested_ = 0;
  std::uint64_t hang_verdicts_ = 0;
  std::uint64_t slow_verdicts_ = 0;
};

}  // namespace skh::collective
