#include "collective/diag.h"

#include <algorithm>

namespace skh::collective {

std::string_view to_string(VerdictKind k) noexcept {
  switch (k) {
    case VerdictKind::kHang: return "hang";
    case VerdictKind::kSlow: return "slow";
  }
  return "unknown";
}

void CollectiveDiagnoser::register_group(const workload::CollectiveGroup& g) {
  if (groups_.size() <= g.id) groups_.resize(g.id + 1);
  GroupState& s = groups_[g.id];
  s.kind = g.kind;
  s.members = g.members;
  s.container_index = g.container_index;
  const std::size_t n = g.members.size();
  s.strikes.assign(n, 0);
  s.slow_reported.assign(n, 0);
  s.hang_reported = false;
  s.pending.clear();
  // Plan-time reservations: one iteration's grid bounds the batch slice.
  s.pending.reserve(n * std::max<std::uint32_t>(1, g.num_steps()));
  s.durations.reserve(n);
  s.ratio_scratch.assign(n, 0.0);
  s.seen_scratch.assign(n, 0);
}

void CollectiveDiagnoser::reset_state() {
  for (GroupState& g : groups_) {
    std::fill(g.strikes.begin(), g.strikes.end(), std::uint16_t{0});
    std::fill(g.slow_reported.begin(), g.slow_reported.end(),
              std::uint8_t{0});
    g.hang_reported = false;
    g.pending.clear();
  }
}

void CollectiveDiagnoser::ingest(std::span<const workload::StepRecord> records,
                                 SimTime now,
                                 std::vector<CollectiveVerdict>& out) {
  steps_ingested_ += records.size();
  // Records arrive in emit order: group ascending, then step, then rank.
  // Walk the group segments and diagnose each as a unit.
  std::size_t i = 0;
  while (i < records.size()) {
    const std::uint32_t gid = records[i].group;
    std::size_t j = i;
    while (j < records.size() && records[j].group == gid) ++j;
    if (gid < groups_.size() && !groups_[gid].members.empty()) {
      GroupState& g = groups_[gid];
      g.pending.assign(records.begin() + static_cast<std::ptrdiff_t>(i),
                       records.begin() + static_cast<std::ptrdiff_t>(j));
      diagnose_group(g, gid, now, out);
    }
    i = j;
  }
}

void CollectiveDiagnoser::diagnose_group(GroupState& g, std::uint32_t gid,
                                         SimTime now,
                                         std::vector<CollectiveVerdict>& out) {
  const std::size_t n = g.members.size();

  // --- hang: dependency-aware timeout --------------------------------------
  // The stall root is the smallest (step, rank) record whose dependencies
  // were satisfied (started) but which never completed past the timeout.
  // Everything blocked behind it is its wait-for chain, not a root: a
  // naive per-rank timeout would page every rank of the communicator.
  const workload::StepRecord* root = nullptr;
  bool all_done = true;
  for (const auto& r : g.pending) {
    if (r.done) continue;
    all_done = false;
    if (r.started && now - r.start >= cfg_.hang_timeout) {
      if (root == nullptr || r.step < root->step ||
          (r.step == root->step && r.rank < root->rank)) {
        root = &r;
      }
    }
  }
  if (all_done) g.hang_reported = false;
  if (root != nullptr && !g.hang_reported) {
    g.hang_reported = true;
    ++hang_verdicts_;
    CollectiveVerdict v;
    v.group = gid;
    v.kind = VerdictKind::kHang;
    v.iteration = root->iteration;
    v.step = root->step;
    v.root_rank = root->rank;
    v.root = root->endpoint;
    v.root_container = g.container_index[root->rank];
    v.detected_at = now;
    v.severity = (now - root->start).to_seconds();
    // Wait-for chain: blocked ranks of the same iteration in (step, rank)
    // order, each rank once, bounded.
    std::vector<std::uint8_t>& seen = g.seen_scratch;
    std::fill(seen.begin(), seen.end(), std::uint8_t{0});
    seen[root->rank] = 1;
    for (const auto& r : g.pending) {
      if (r.iteration != root->iteration || r.done || r.started) continue;
      if (seen[r.rank]) continue;
      seen[r.rank] = 1;
      v.waiters.push_back(r.endpoint);
      if (v.waiters.size() >= cfg_.max_waiters) break;
    }
    out.push_back(std::move(v));
  }

  // --- slow: per-step sibling-relative timing -------------------------------
  // For each step, the siblings that completed it form the control group;
  // a rank repeatedly landing beyond ratio * median accumulates strikes.
  std::vector<double>& worst_ratio = g.ratio_scratch;
  std::fill(worst_ratio.begin(), worst_ratio.end(), 0.0);
  std::size_t i = 0;
  while (i < g.pending.size()) {
    const std::uint32_t step = g.pending[i].step;
    std::size_t j = i;
    g.durations.clear();
    while (j < g.pending.size() && g.pending[j].step == step) {
      if (g.pending[j].done) {
        g.durations.push_back(
            (g.pending[j].end - g.pending[j].start).to_seconds());
      }
      ++j;
    }
    if (g.durations.size() >= 3) {
      const auto mid = g.durations.begin() +
                       static_cast<std::ptrdiff_t>(g.durations.size() / 2);
      std::nth_element(g.durations.begin(), mid, g.durations.end());
      const double median = *mid;
      if (median > 0.0) {
        for (std::size_t k = i; k < j; ++k) {
          if (!g.pending[k].done) continue;
          const double ratio =
              (g.pending[k].end - g.pending[k].start).to_seconds() / median;
          worst_ratio[g.pending[k].rank] =
              std::max(worst_ratio[g.pending[k].rank], ratio);
        }
      }
    }
    i = j;
  }
  if (g.pending.empty()) return;
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    if (worst_ratio[rank] > cfg_.straggler_ratio) {
      if (g.strikes[rank] < 0xffff) ++g.strikes[rank];
      if (g.strikes[rank] >= cfg_.straggler_strikes &&
          !g.slow_reported[rank]) {
        g.slow_reported[rank] = 1;
        ++slow_verdicts_;
        CollectiveVerdict v;
        v.group = gid;
        v.kind = VerdictKind::kSlow;
        v.iteration = g.pending.front().iteration;
        v.step = 0;
        v.root_rank = rank;
        v.root = g.members[rank];
        v.root_container = g.container_index[rank];
        v.detected_at = now;
        v.severity = worst_ratio[rank];
        out.push_back(std::move(v));
      }
    } else {
      // Recovery resets both the streak and the latch: a relapse is a new
      // incident and deserves a new verdict.
      g.strikes[rank] = 0;
      g.slow_reported[rank] = 0;
    }
  }
}

}  // namespace skh::collective
