// Training tasks and container lifecycle state.
//
// A training task is a tenant-submitted group of containers; each container
// binds `gpus_per_container` GPU+RNIC pairs on one host (§2). Containers of
// one task transition states asynchronously — different hosts impose
// different startup/teardown delays (§3.1, Figure 4) — which is exactly the
// dynamics SkeletonHunter's incremental ping-list activation exists to
// survive.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace skh::cluster {

/// Hardware tier of a container (Figure 3: higher-end configs live longer —
/// low-end containers are typically debug/test runs).
enum class ConfigTier : std::uint8_t { kLow, kMid, kHigh };

[[nodiscard]] std::string_view to_string(ConfigTier t) noexcept;

enum class ContainerState : std::uint8_t {
  kPending,      ///< requested, host not ready
  kStarting,     ///< placed; network stack still initializing
  kRunning,      ///< ready; may be probed
  kTerminating,  ///< teardown begun
  kDead,
};

[[nodiscard]] std::string_view to_string(ContainerState s) noexcept;

/// Tenant request for a training task.
struct TaskRequest {
  TenantId tenant;
  std::uint32_t num_containers = 1;
  std::uint32_t gpus_per_container = 8;  ///< == RNICs bound per container
  ConfigTier tier = ConfigTier::kHigh;
  SimTime lifetime = SimTime::minutes(60);  ///< running duration of the task
};

struct ContainerInfo {
  ContainerId id;
  TaskId task;
  HostId host;
  std::uint32_t index_in_task = 0;
  ContainerState state = ContainerState::kPending;
  std::vector<RnicId> rnics;
  SimTime created;
  SimTime running_at;  ///< meaningful once state >= kRunning
  SimTime dead_at;     ///< meaningful once state == kDead

  [[nodiscard]] std::vector<Endpoint> endpoints() const {
    std::vector<Endpoint> out;
    out.reserve(rnics.size());
    for (RnicId r : rnics) out.push_back(Endpoint{id, r});
    return out;
  }
};

struct TaskInfo {
  TaskId id;
  TaskRequest request;
  std::vector<ContainerId> containers;
  SimTime submitted;
  bool terminated = false;

  [[nodiscard]] std::uint32_t total_gpus() const noexcept {
    return request.num_containers * request.gpus_per_container;
  }
};

}  // namespace skh::cluster
