// Container orchestration over the simulated cluster.
//
// The orchestrator is the control plane of Figure 1: it places a task's
// containers on hosts with free GPU capacity, binds their RNICs, attaches
// their endpoints to the overlay network, and drives the per-container state
// machine on the shared event queue. Containers become Running after a
// host-dependent startup delay (Figure 4's phased pattern); the registration
// callbacks fired at that moment are what SkeletonHunter's agents use for
// incremental ping-list activation (§5.1).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/task.h"
#include "cluster/traces.h"
#include "common/rng.h"
#include "obs/context.h"
#include "overlay/overlay.h"
#include "sim/event_queue.h"
#include "topo/topology.h"

namespace skh::cluster {

class Orchestrator {
 public:
  Orchestrator(const topo::Topology& topo, overlay::OverlayNetwork& overlay,
               sim::EventQueue& events, RngStream rng);

  /// Attach the observability context (nullptr detaches): task/container
  /// lifecycle counters, a running-container gauge, and register/deregister
  /// trace instants.
  void attach_obs(obs::Context* ctx);

  /// Place and launch a task at the current simulated time. Returns nullopt
  /// if the cluster lacks capacity (placement is all-or-nothing).
  [[nodiscard]] std::optional<TaskId> submit_task(const TaskRequest& req);

  /// Begin teardown of all containers of a task (phased, like startup).
  void terminate_task(TaskId task);

  // --- queries --------------------------------------------------------------
  [[nodiscard]] const TaskInfo& task(TaskId id) const;
  [[nodiscard]] const ContainerInfo& container(ContainerId id) const;
  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::vector<Endpoint> endpoints_of_task(TaskId id) const;
  /// Endpoints of containers currently in Running state.
  [[nodiscard]] std::vector<Endpoint> running_endpoints_of_task(
      TaskId id) const;
  [[nodiscard]] std::uint32_t free_gpus(HostId host) const;

  // --- registration (data-plane activation, §5.1) ---------------------------
  using ContainerCallback = std::function<void(const ContainerInfo&)>;
  /// Fired synchronously at submit time for every placed container (still
  /// Starting; its network stack is not ready yet).
  void on_container_created(ContainerCallback cb);
  /// Fired when a container reaches Running (it can now be pinged).
  void on_container_running(ContainerCallback cb);
  /// Fired when a container leaves Running (terminating or crashed).
  void on_container_stopped(ContainerCallback cb);

  // --- mid-run churn (restart / migration / crash reconciliation) -----------
  /// Why a churn notification fired.
  enum class ChurnReason : std::uint8_t { kRestart, kMigration, kCrash };
  /// Fired whenever a container's placement or lifecycle churns mid-run:
  /// synchronously inside restart_container / migrate_container (the control
  /// plane initiated those, so subscribers learn before the next probe
  /// round), and after kCrashNotifyLag for crashes (the control plane itself
  /// learns late). Always fired *after* the stopped callbacks of the same
  /// event, and — for migrations — after the container's RNICs have been
  /// rebound, so subscribers rebuilding probe plans see the new endpoints.
  using ChurnCallback = std::function<void(const ContainerInfo&, ChurnReason)>;
  void on_container_churn(ChurnCallback cb);

  /// Restart a Running container in place (same host, same RNICs): fires the
  /// stopped + churn callbacks synchronously (deregistration happens before
  /// any probe can target the dying network stack), detaches its endpoints,
  /// and schedules a fresh startup delay back to Running. Non-Running
  /// containers are left untouched.
  void restart_container(ContainerId id);

  /// Migrate a Running container: deregister (stopped callbacks), release
  /// its host resources, re-place it on another host with free capacity
  /// (honoring the placement filter; falls back to its current host when
  /// nothing else fits), rebind its RNICs, fire the churn callbacks, and
  /// schedule startup. Returns false (no-op) if the container is not
  /// Running or no schedulable host has capacity.
  bool migrate_container(ContainerId id);

  /// Scheduling policy hook: hosts for which the filter returns false are
  /// skipped during placement (e.g. blacklisted hosts, §8).
  using PlacementFilter = std::function<bool(HostId)>;
  void set_placement_filter(PlacementFilter filter);

  /// Crash a container immediately (container-runtime fault, Table 1 #17).
  /// The network detaches at once; the stopped callback fires only after
  /// kCrashNotifyLag, modelling the control plane's state-sync delay.
  void crash_container(ContainerId id);

  /// Control-plane notification lag after a crash (§3.1 state-sync delay).
  static constexpr SimTime kCrashNotifyLag = SimTime::seconds(90);

 private:
  void set_running(ContainerId id);
  void set_dead(ContainerId id);
  void release_resources(const ContainerInfo& ci);
  /// Shared deregistration step for restart/migration: counters, trace
  /// instant, state flip to Starting, stopped callbacks.
  void deregister_for_churn(ContainerInfo& ci);

  const topo::Topology& topo_;
  overlay::OverlayNetwork& overlay_;
  sim::EventQueue& events_;
  RngStream rng_;

  std::vector<TaskInfo> tasks_;
  std::vector<ContainerInfo> containers_;
  std::unordered_map<HostId, std::uint32_t> gpus_used_;
  PlacementFilter placement_filter_;
  std::vector<ContainerCallback> created_cbs_;
  std::vector<ContainerCallback> running_cbs_;
  std::vector<ContainerCallback> stopped_cbs_;
  std::vector<ChurnCallback> churn_cbs_;

  obs::Context* obs_ = nullptr;
  obs::Counter m_tasks_submitted_;
  obs::Counter m_tasks_rejected_;
  obs::Counter m_containers_started_;
  obs::Counter m_containers_stopped_;
  obs::Counter m_containers_crashed_;
  obs::Counter m_containers_restarted_;
  obs::Counter m_containers_migrated_;
  obs::Gauge m_containers_running_;
};

}  // namespace skh::cluster
