#include "cluster/traces.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace skh::cluster {

std::string_view to_string(ConfigTier t) noexcept {
  switch (t) {
    case ConfigTier::kLow: return "low";
    case ConfigTier::kMid: return "mid";
    case ConfigTier::kHigh: return "high";
  }
  return "unknown";
}

std::string_view to_string(ContainerState s) noexcept {
  switch (s) {
    case ContainerState::kPending: return "pending";
    case ContainerState::kStarting: return "starting";
    case ContainerState::kRunning: return "running";
    case ContainerState::kTerminating: return "terminating";
    case ContainerState::kDead: return "dead";
  }
  return "unknown";
}

std::uint32_t sample_task_gpus(RngStream& rng) {
  // Fig. 12: requested GPU counts confined to a limited set of multiples of
  // eight, with 128/512/1024 carrying the bulk of the distribution.
  static constexpr std::array<std::uint32_t, 9> sizes{
      8, 16, 32, 64, 128, 256, 512, 1024, 2048};
  static const std::vector<double> weights{
      0.10, 0.08, 0.08, 0.10, 0.22, 0.10, 0.18, 0.10, 0.04};
  return sizes[rng.weighted_index(weights)];
}

std::uint32_t sample_rnics_per_container(RngStream& rng) {
  // Fig. 5: the vast majority bind 8 RNICs, a nontrivial portion 4.
  static const std::vector<double> weights{0.70, 0.24, 0.04, 0.02};
  static constexpr std::array<std::uint32_t, 4> counts{8, 4, 2, 1};
  return counts[rng.weighted_index(weights)];
}

ConfigTier sample_config_tier(RngStream& rng) {
  static const std::vector<double> weights{0.35, 0.30, 0.35};
  return static_cast<ConfigTier>(rng.weighted_index(weights));
}

SimTime sample_lifetime(std::uint32_t task_size_containers, ConfigTier tier,
                        RngStream& rng) {
  // Two-mode mixture (minutes): a short debug/test mode and a long training
  // mode. The short-mode probability falls with task size and tier, which
  // yields Fig. 2's "~50% < 60 min for size <= 256" and Fig. 3's
  // "higher-end configs live longer".
  double p_short = 0.60;
  if (task_size_containers > 256) {
    p_short = 0.35;
  } else if (task_size_containers > 64) {
    p_short = 0.55;
  }
  switch (tier) {
    case ConfigTier::kLow: p_short += 0.15; break;
    case ConfigTier::kMid: break;
    case ConfigTier::kHigh: p_short -= 0.15; break;
  }
  p_short = std::clamp(p_short, 0.05, 0.95);

  double minutes = 0.0;
  if (rng.bernoulli(p_short)) {
    // Short mode: median ~35 min, rarely above ~90 min.
    minutes = rng.lognormal(std::log(35.0), 0.5);
  } else {
    // Long mode: median ~2 h, heavy tail to days (keeps the paper's "70%
    // of training containers live under 100 minutes" overall).
    minutes = rng.lognormal(std::log(120.0), 0.8);
  }
  minutes = std::clamp(minutes, 2.0, 14.0 * 24.0 * 60.0);
  return SimTime::minutes(minutes);
}

SimTime sample_startup_delay(std::uint32_t task_size_containers,
                             std::uint32_t container_index, RngStream& rng) {
  // Phased pattern (Fig. 4): containers come up in waves (the orchestration
  // system batches image pulls / device plumbing); each wave is ~25 s apart,
  // individual containers jitter within the wave, and a lognormal straggler
  // tail grows with task size (up to ~10 min for the largest tasks).
  constexpr double kWaveSize = 32.0;
  constexpr double kWaveGapSec = 25.0;
  const double wave = std::floor(static_cast<double>(container_index) /
                                 kWaveSize);
  double delay = 20.0 + wave * kWaveGapSec + rng.uniform(0.0, 15.0);
  const double size_factor =
      std::log2(std::max<std::uint32_t>(task_size_containers, 2));
  if (rng.bernoulli(0.05 + 0.01 * size_factor)) {
    // Straggler: slow host (cold cache, busy disks).
    delay += rng.lognormal(std::log(60.0 + 12.0 * size_factor), 0.7);
  }
  return SimTime::seconds(std::min(delay, 600.0));
}

SimTime sample_teardown_delay(std::uint32_t task_size_containers,
                              RngStream& rng) {
  const double size_factor =
      std::log2(std::max<std::uint32_t>(task_size_containers, 2));
  double delay = 5.0 + rng.uniform(0.0, 10.0);
  if (rng.bernoulli(0.04 + 0.008 * size_factor)) {
    delay += rng.lognormal(std::log(40.0), 0.6);
  }
  return SimTime::seconds(std::min(delay, 480.0));
}

}  // namespace skh::cluster
