// Synthetic production-trace distributions.
//
// The paper motivates SkeletonHunter with measurements of its production
// cluster (Figures 2-6, 12). We cannot have those traces, so these samplers
// reproduce the published distribution *shapes*: they are the single source
// used both by the orchestrator (startup/lifetime draws) and by the figure
// benches (standalone distribution plots).
#pragma once

#include <cstdint>

#include "cluster/task.h"
#include "common/rng.h"
#include "common/time.h"

namespace skh::cluster {

/// Fig. 12: task sizes concentrate on powers-of-two multiples of 8
/// (8, 16, ..., 2048 GPUs), with 128/512/1024 the popular bulk.
[[nodiscard]] std::uint32_t sample_task_gpus(RngStream& rng);

/// Fig. 5: most containers bind 8 RNICs, a nontrivial share binds 4,
/// and a small residue binds 1-2 (debug shells).
[[nodiscard]] std::uint32_t sample_rnics_per_container(RngStream& rng);

/// Config-tier mix: low-end debug containers are common, high-end training
/// containers carry the GPU volume (Figure 3 narrative).
[[nodiscard]] ConfigTier sample_config_tier(RngStream& rng);

/// Figs. 2-3: container lifetime. Small tasks / low tiers skew short
/// (~50% under 60 min for size <= 256); high-end containers run longer.
/// Mixture of a short-lived debug mode and a long-running training mode.
[[nodiscard]] SimTime sample_lifetime(std::uint32_t task_size_containers,
                                      ConfigTier tier, RngStream& rng);

/// Fig. 4: per-container startup delay within a task. Phased pattern: the
/// bulk starts in waves a couple of minutes in; larger tasks bear a heavier
/// tail (up to ~10 minutes).
[[nodiscard]] SimTime sample_startup_delay(std::uint32_t task_size_containers,
                                           std::uint32_t container_index,
                                           RngStream& rng);

/// Teardown delay; same phased structure as startup (§3.1: "the deletion
/// time of containers exhibits a similar situation").
[[nodiscard]] SimTime sample_teardown_delay(
    std::uint32_t task_size_containers, RngStream& rng);

}  // namespace skh::cluster
