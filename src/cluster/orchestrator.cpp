#include "cluster/orchestrator.h"

#include <stdexcept>

#include "common/logging.h"

namespace skh::cluster {

Orchestrator::Orchestrator(const topo::Topology& topo,
                           overlay::OverlayNetwork& overlay,
                           sim::EventQueue& events, RngStream rng)
    : topo_(topo), overlay_(overlay), events_(events), rng_(std::move(rng)) {}

void Orchestrator::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  if (ctx == nullptr) {
    m_tasks_submitted_ = {};
    m_tasks_rejected_ = {};
    m_containers_started_ = {};
    m_containers_stopped_ = {};
    m_containers_crashed_ = {};
    m_containers_restarted_ = {};
    m_containers_migrated_ = {};
    m_containers_running_ = {};
    return;
  }
  auto& r = ctx->registry;
  m_tasks_submitted_ = r.bind_counter(r.counter_id("orchestrator.tasks_submitted"));
  m_tasks_rejected_ = r.bind_counter(r.counter_id("orchestrator.tasks_rejected"));
  m_containers_started_ =
      r.bind_counter(r.counter_id("orchestrator.containers_started"));
  m_containers_stopped_ =
      r.bind_counter(r.counter_id("orchestrator.containers_stopped"));
  m_containers_crashed_ =
      r.bind_counter(r.counter_id("orchestrator.containers_crashed"));
  m_containers_restarted_ =
      r.bind_counter(r.counter_id("orchestrator.containers_restarted"));
  m_containers_migrated_ =
      r.bind_counter(r.counter_id("orchestrator.containers_migrated"));
  m_containers_running_ =
      r.bind_gauge(r.gauge_id("orchestrator.containers_running"));
}

std::optional<TaskId> Orchestrator::submit_task(const TaskRequest& req) {
  if (req.num_containers == 0 || req.gpus_per_container == 0 ||
      req.gpus_per_container > topo_.config().rails_per_host) {
    throw std::invalid_argument("submit_task: bad container shape");
  }
  // All-or-nothing placement: find a host with capacity for every container.
  // Rails are allocated contiguously so that container k of the task holds
  // the same rail range on its host whenever hosts fill uniformly (the
  // rail-optimized assumption the basic ping list depends on).
  std::vector<std::pair<HostId, std::uint32_t>> placement;  // host, first rail
  std::unordered_map<HostId, std::uint32_t> tentative = gpus_used_;
  for (std::uint32_t c = 0; c < req.num_containers; ++c) {
    bool placed = false;
    for (std::uint32_t h = 0; h < topo_.num_hosts(); ++h) {
      const HostId host{h};
      if (placement_filter_ && !placement_filter_(host)) continue;
      const std::uint32_t used = tentative[host];
      if (used + req.gpus_per_container <= topo_.config().rails_per_host) {
        placement.emplace_back(host, used);
        tentative[host] = used + req.gpus_per_container;
        placed = true;
        break;
      }
    }
    if (!placed) {
      m_tasks_rejected_.inc();
      return std::nullopt;
    }
  }
  gpus_used_ = std::move(tentative);

  const TaskId task_id{static_cast<std::uint32_t>(tasks_.size())};
  TaskInfo info;
  info.id = task_id;
  info.request = req;
  info.submitted = events_.now();

  for (std::uint32_t c = 0; c < req.num_containers; ++c) {
    const ContainerId cid{static_cast<std::uint32_t>(containers_.size())};
    ContainerInfo ci;
    ci.id = cid;
    ci.task = task_id;
    ci.host = placement[c].first;
    ci.index_in_task = c;
    ci.state = ContainerState::kStarting;
    ci.created = events_.now();
    for (std::uint32_t g = 0; g < req.gpus_per_container; ++g) {
      ci.rnics.push_back(topo_.rnic_of(ci.host, placement[c].second + g));
    }
    containers_.push_back(std::move(ci));
    info.containers.push_back(cid);

    const SimTime delay =
        sample_startup_delay(req.num_containers, c, rng_);
    events_.schedule_after(delay, [this, cid] { set_running(cid); });
  }
  tasks_.push_back(std::move(info));
  for (ContainerId cid : tasks_.back().containers) {
    for (auto& cb : created_cbs_) cb(containers_[cid.value()]);
  }

  // Task lifetime clock starts at submission; teardown is phased per
  // container like startup (§3.1).
  events_.schedule_after(req.lifetime, [this, task_id] {
    if (!tasks_[task_id.value()].terminated) terminate_task(task_id);
  });
  m_tasks_submitted_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("orchestrator", "task.submit", events_.now(),
                         task_id.value(), req.num_containers);
  }
  return task_id;
}

void Orchestrator::terminate_task(TaskId task) {
  auto& info = tasks_.at(task.value());
  if (info.terminated) return;
  info.terminated = true;
  for (ContainerId cid : info.containers) {
    auto& ci = containers_[cid.value()];
    if (ci.state == ContainerState::kDead) continue;
    const bool was_running = ci.state == ContainerState::kRunning;
    ci.state = ContainerState::kTerminating;
    if (was_running) {
      m_containers_stopped_.inc();
      m_containers_running_.add(-1.0);
      if (obs_ != nullptr) {
        obs_->tracer.instant("orchestrator", "container.deregister",
                             events_.now(), cid.value(), task.value());
      }
    }
    for (auto& cb : stopped_cbs_) cb(ci);
    const SimTime delay =
        sample_teardown_delay(info.request.num_containers, rng_);
    events_.schedule_after(delay, [this, cid] { set_dead(cid); });
  }
}

const TaskInfo& Orchestrator::task(TaskId id) const {
  if (!id.valid() || id.value() >= tasks_.size()) {
    throw std::out_of_range("Orchestrator::task: bad id");
  }
  return tasks_[id.value()];
}

const ContainerInfo& Orchestrator::container(ContainerId id) const {
  if (!id.valid() || id.value() >= containers_.size()) {
    throw std::out_of_range("Orchestrator::container: bad id");
  }
  return containers_[id.value()];
}

std::vector<Endpoint> Orchestrator::endpoints_of_task(TaskId id) const {
  std::vector<Endpoint> out;
  for (ContainerId cid : task(id).containers) {
    const auto eps = container(cid).endpoints();
    out.insert(out.end(), eps.begin(), eps.end());
  }
  return out;
}

std::vector<Endpoint> Orchestrator::running_endpoints_of_task(
    TaskId id) const {
  std::vector<Endpoint> out;
  for (ContainerId cid : task(id).containers) {
    const auto& ci = container(cid);
    if (ci.state != ContainerState::kRunning) continue;
    const auto eps = ci.endpoints();
    out.insert(out.end(), eps.begin(), eps.end());
  }
  return out;
}

std::uint32_t Orchestrator::free_gpus(HostId host) const {
  const auto it = gpus_used_.find(host);
  const std::uint32_t used = it == gpus_used_.end() ? 0 : it->second;
  return topo_.config().rails_per_host - used;
}

void Orchestrator::set_placement_filter(PlacementFilter filter) {
  placement_filter_ = std::move(filter);
}

void Orchestrator::on_container_created(ContainerCallback cb) {
  created_cbs_.push_back(std::move(cb));
}

void Orchestrator::on_container_running(ContainerCallback cb) {
  running_cbs_.push_back(std::move(cb));
}

void Orchestrator::on_container_stopped(ContainerCallback cb) {
  stopped_cbs_.push_back(std::move(cb));
}

void Orchestrator::on_container_churn(ChurnCallback cb) {
  churn_cbs_.push_back(std::move(cb));
}

void Orchestrator::deregister_for_churn(ContainerInfo& ci) {
  m_containers_stopped_.inc();
  m_containers_running_.add(-1.0);
  if (obs_ != nullptr) {
    obs_->tracer.instant("orchestrator", "container.deregister",
                         events_.now(), ci.id.value(), ci.task.value());
  }
  // Deregistration-before-probe guarantee: the control plane initiated this
  // churn, so subscribers hear it within this call — strictly before the
  // event queue can run another probe round.
  ci.state = ContainerState::kStarting;
  for (auto& cb : stopped_cbs_) cb(ci);
}

void Orchestrator::restart_container(ContainerId id) {
  auto& ci = containers_.at(id.value());
  if (ci.state != ContainerState::kRunning) return;
  deregister_for_churn(ci);
  for (const Endpoint& ep : ci.endpoints()) {
    if (overlay_.attached(ep)) overlay_.detach_endpoint(ep);
  }
  m_containers_restarted_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("orchestrator", "container.restart", events_.now(),
                         id.value(), ci.task.value());
  }
  for (auto& cb : churn_cbs_) cb(ci, ChurnReason::kRestart);
  const auto& info = tasks_.at(ci.task.value());
  const SimTime delay = sample_startup_delay(info.request.num_containers,
                                             ci.index_in_task, rng_);
  events_.schedule_after(delay, [this, id] { set_running(id); });
  SKH_LOG_INFO("orchestrator", "container ", id.value(), " restarting");
}

bool Orchestrator::migrate_container(ContainerId id) {
  auto& ci = containers_.at(id.value());
  if (ci.state != ContainerState::kRunning) return false;
  const HostId old_host = ci.host;
  const auto gpus = static_cast<std::uint32_t>(ci.rnics.size());

  // Pick the destination *before* deregistering so a capacity miss leaves
  // the container untouched. Prefer any other schedulable host; fall back
  // to re-placing on the current host (a restart-shaped migration).
  std::optional<HostId> dest;
  for (std::uint32_t h = 0; h < topo_.num_hosts(); ++h) {
    const HostId host{h};
    if (host == old_host) continue;
    if (placement_filter_ && !placement_filter_(host)) continue;
    if (gpus_used_[host] + gpus <= topo_.config().rails_per_host) {
      dest = host;
      break;
    }
  }
  if (!dest) {
    if (placement_filter_ && !placement_filter_(old_host)) return false;
    dest = old_host;  // own allocation is freed below, so it always fits
  }

  deregister_for_churn(ci);
  release_resources(ci);

  ci.host = *dest;
  const std::uint32_t first_rail = gpus_used_[ci.host];
  ci.rnics.clear();
  for (std::uint32_t g = 0; g < gpus; ++g) {
    ci.rnics.push_back(topo_.rnic_of(ci.host, first_rail + g));
  }
  gpus_used_[ci.host] += gpus;

  m_containers_migrated_.inc();
  if (obs_ != nullptr) {
    obs_->tracer.instant("orchestrator", "container.migrate", events_.now(),
                         id.value(), ci.host.value());
  }
  // Churn callbacks fire after the rebind: subscribers rebuilding probe
  // plans must see the post-migration endpoints.
  for (auto& cb : churn_cbs_) cb(ci, ChurnReason::kMigration);
  const auto& info = tasks_.at(ci.task.value());
  const SimTime delay = sample_startup_delay(info.request.num_containers,
                                             ci.index_in_task, rng_);
  events_.schedule_after(delay, [this, id] { set_running(id); });
  SKH_LOG_INFO("orchestrator", "container ", id.value(), " migrating ",
               old_host.value(), " -> ", ci.host.value());
  return true;
}

void Orchestrator::crash_container(ContainerId id) {
  auto& ci = containers_.at(id.value());
  if (ci.state == ContainerState::kDead) return;
  const bool was_running = ci.state == ContainerState::kRunning;
  ci.state = ContainerState::kDead;
  ci.dead_at = events_.now();
  release_resources(ci);
  m_containers_crashed_.inc();
  if (was_running) {
    m_containers_stopped_.inc();
    m_containers_running_.add(-1.0);
  }
  if (obs_ != nullptr) {
    obs_->tracer.instant("orchestrator", "container.crash", events_.now(),
                         id.value(), ci.task.value());
  }
  // The data plane dies instantly, but the control plane only learns about
  // the crash after a state-sync lag (§3.1: container state transitions are
  // uncoordinated and lag by minutes). Peers keep probing the dead
  // container during the lag — which is precisely how SkeletonHunter
  // detects container-runtime failures before the orchestration system
  // reacts.
  if (was_running) {
    events_.schedule_after(kCrashNotifyLag, [this, id] {
      const auto& info = containers_.at(id.value());
      for (auto& cb : stopped_cbs_) cb(info);
      for (auto& cb : churn_cbs_) cb(info, ChurnReason::kCrash);
    });
  }
  SKH_LOG_INFO("orchestrator", "container ", id.value(), " crashed");
}

void Orchestrator::release_resources(const ContainerInfo& ci) {
  for (const Endpoint& ep : ci.endpoints()) {
    if (overlay_.attached(ep)) overlay_.detach_endpoint(ep);
  }
  auto& used = gpus_used_[ci.host];
  const auto held = static_cast<std::uint32_t>(ci.rnics.size());
  used = used >= held ? used - held : 0;
}

void Orchestrator::set_running(ContainerId id) {
  auto& ci = containers_.at(id.value());
  if (ci.state != ContainerState::kStarting) return;  // crashed/terminated
  ci.state = ContainerState::kRunning;
  ci.running_at = events_.now();
  // Attach this container's endpoints to the overlay under the task's VNI:
  // VXLAN tenant isolation makes them reachable from (only) the other
  // endpoints of the same task. Intra-container traffic rides NVLink and
  // never touches the overlay.
  for (const Endpoint& ep : ci.endpoints()) {
    overlay_.attach_endpoint(ep, ci.host, ci.task.value());
  }
  m_containers_started_.inc();
  m_containers_running_.add(1.0);
  if (obs_ != nullptr) {
    obs_->tracer.instant("orchestrator", "container.register", events_.now(),
                         id.value(), ci.task.value());
  }
  for (auto& cb : running_cbs_) cb(ci);
}

void Orchestrator::set_dead(ContainerId id) {
  auto& ci = containers_.at(id.value());
  if (ci.state == ContainerState::kDead) return;
  ci.state = ContainerState::kDead;
  ci.dead_at = events_.now();
  release_resources(ci);
}

}  // namespace skh::cluster
