#include "runner/campaign_runner.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "runner/pool.h"

namespace skh::runner {

namespace {

/// Map an issue type to a concrete injectable target on `victim`'s path —
/// the same resolution the accuracy bench uses, so every issue class lands
/// on a component of the kind Table 1 says it degrades.
sim::ComponentRef target_for(sim::IssueType type, const Endpoint& victim,
                             const topo::Topology& topo) {
  switch (sim::issue_info(type).target_kind) {
    case sim::ComponentKind::kPhysicalLink:
      return {sim::ComponentKind::kPhysicalLink,
              topo.uplink_of(victim.rnic).value()};
    case sim::ComponentKind::kPhysicalSwitch: {
      const auto host = topo.host_of(victim.rnic);
      return {sim::ComponentKind::kPhysicalSwitch,
              topo.tor_at(topo.segment_of(host), topo.rail_of(victim.rnic))
                  .value()};
    }
    case sim::ComponentKind::kRnic:
      return {sim::ComponentKind::kRnic, victim.rnic.value()};
    case sim::ComponentKind::kVSwitch:
      return {sim::ComponentKind::kVSwitch,
              topo.host_of(victim.rnic).value()};
    default:
      return {sim::ComponentKind::kHost, topo.host_of(victim.rnic).value()};
  }
}

}  // namespace

RunResult run_campaign(const CampaignConfig& cfg, std::uint64_t seed) {
  RunResult result;
  result.seed = seed;

  core::ExperimentConfig ecfg;
  ecfg.topology = cfg.topology;
  ecfg.hunter = cfg.hunter;
  ecfg.seed = seed;
  ecfg.obs = cfg.obs;
  // Telemetry plan: derived from the seed alone (named fork of a fresh
  // stream, untouched by any subsystem's draws) and installed before the
  // hunter is built, since the channel is wired at construction.
  if (cfg.telemetry_faults > 0) {
    RngStream trng = RngStream(seed).fork("telemetry-plan");
    ecfg.hunter.telemetry = sim::make_telemetry_storm(
        cfg.telemetry_faults, cfg.telemetry_start, cfg.telemetry_spacing,
        cfg.telemetry_duration, trng);
  }
  result.telemetry_events = ecfg.hunter.telemetry.faults.size();
  core::Experiment exp(ecfg);

  std::vector<TaskId> tasks;
  std::vector<workload::TaskLayout> layouts;  ///< aligned with `tasks`
  for (const auto& shape : cfg.tasks) {
    cluster::TaskRequest req;
    req.num_containers = shape.containers;
    req.gpus_per_container = shape.gpus_per_container;
    req.lifetime = cfg.task_lifetime;
    const auto t = exp.launch_task(req);
    if (!t) continue;  // cluster out of capacity: skip this tenant
    exp.run_to_running(*t);
    workload::ParallelismConfig par;
    par.tp = shape.gpus_per_container;
    par.pp = shape.pp;
    par.dp = shape.dp;
    auto layout = exp.layout_of(*t, par);
    (void)exp.apply_skeleton(*t, layout);
    tasks.push_back(*t);
    layouts.push_back(std::move(layout));
  }
  result.tasks_launched = tasks.size();
  if (tasks.empty()) return result;

  // Fault plan: forked by name, so the schedule depends only on the seed —
  // not on how many draws the subsystems made before this point.
  RngStream frng = exp.rng().fork("fault-plan");
  SimTime cursor = exp.events().now() + cfg.warmup;

  auto random_endpoint = [&](TaskId task) -> Endpoint {
    const auto eps = exp.orchestrator().endpoints_of_task(task);
    return eps[static_cast<std::size_t>(frng.uniform_int(
        0, static_cast<std::int64_t>(eps.size()) - 1))];
  };

  if (!cfg.issue_mix.empty()) {
    for (std::size_t i = 0; i < cfg.visible_faults; ++i) {
      const auto type = cfg.issue_mix[i % cfg.issue_mix.size()];
      const TaskId task = tasks[static_cast<std::size_t>(frng.uniform_int(
          0, static_cast<std::int64_t>(tasks.size()) - 1))];
      const Endpoint victim = random_endpoint(task);
      exp.faults().inject(type, target_for(type, victim, exp.topology()),
                          cursor, cursor + cfg.fault_duration);
      cursor += cfg.fault_gap;
    }
  }

  // Intra-host faults: invisible to probing, bound recall (§7.3).
  for (std::size_t i = 0; i < cfg.invisible_faults; ++i) {
    const auto host = static_cast<std::uint32_t>(frng.uniform_int(
        0, static_cast<std::int64_t>(cfg.topology.num_hosts) - 1));
    exp.faults().inject(sim::IssueType::kNvlinkDegradation,
                        {sim::ComponentKind::kHost, host}, cursor,
                        cursor + cfg.fault_duration);
    cursor += cfg.fault_gap;
  }

  // Crashed sidecar agents: phantoms that bound precision (§7.3), spaced
  // well clear of real faults so their cases cannot be attributed to one.
  for (std::size_t i = 0; i < cfg.phantom_agents; ++i) {
    cursor += SimTime::minutes(40);
    const Endpoint victim = random_endpoint(tasks[0]);
    exp.faults().inject_phantom(
        {sim::ComponentKind::kContainer, victim.container.value()}, cursor,
        cursor + SimTime::minutes(3));
    cursor += cfg.fault_gap;
  }

  // Churn plan: its own named fork for the same reason as the fault plan —
  // the schedule must not depend on draws made by other subsystems.
  if (cfg.churn_restarts > 0 || cfg.churn_migrations > 0) {
    RngStream crng = exp.rng().fork("churn-plan");
    const SimTime churn_base = exp.events().now() + cfg.churn_start;
    for (const TaskId task : tasks) {
      const auto n_containers = static_cast<std::uint32_t>(
          exp.orchestrator().task(task).containers.size());
      auto plan = sim::make_restart_storm(n_containers, cfg.churn_restarts,
                                          churn_base, cfg.churn_spacing,
                                          crng);
      const auto wave = sim::make_migration_wave(
          n_containers, cfg.churn_migrations,
          churn_base + cfg.churn_spacing * 0.5, cfg.churn_spacing, crng);
      plan.insert(plan.end(), wave.begin(), wave.end());
      exp.schedule_churn(task, plan);
      result.churn_events += plan.size();
    }
  }

  // Collective signal plane: host-side fault plans from their own named
  // fork (like the fault/churn/telemetry plans, a pure function of the
  // seed), one plan per task so victims are task-local container indices.
  if (cfg.collective_plane) {
    RngStream kng = exp.rng().fork("collective-plan");
    const SimTime coll_base = exp.events().now() + cfg.collective_start;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const auto n_containers = static_cast<std::uint32_t>(
          exp.orchestrator().task(tasks[i]).containers.size());
      const auto plan = sim::make_collective_storm(
          n_containers, cfg.collective_faults, coll_base,
          cfg.collective_spacing, cfg.collective_duration, kng);
      exp.enable_collective_plane(tasks[i], layouts[i], plan,
                                  cursor + cfg.drain);
      result.collective_events += plan.faults.size();
    }
  }

  exp.hunter().start(cursor + cfg.drain);
  exp.events().run_all();
  exp.hunter().finalize();

  result.score = core::score_campaign(exp.hunter().failure_cases(),
                                      exp.faults(), exp.topology(),
                                      cfg.score);
  result.faults = exp.faults().faults();
  result.failure_cases = exp.hunter().failure_cases().size();
  result.probes_sent = exp.hunter().total_probes();
  result.detector = exp.hunter().detector_counters();
  result.cases_network_silent = result.score.cases_network_silent;
  result.collective_steps = exp.hunter().collective_steps();
  result.collective_fingerprint = exp.collective_fingerprint();
  if (cfg.obs.metrics) {
    result.metrics = exp.obs().registry.scrape();
    for (const auto& h : result.metrics.histograms) {
      if (h.name == "latency.ingest_to_verdict_s") {
        result.p99_verdict_latency_s = h.quantile(0.99);
        break;
      }
    }
    result.forensic_bundles = exp.obs().recorder.bundles().size();
  }
  return result;
}

CampaignSet run_many(const CampaignConfig& cfg,
                     std::span<const std::uint64_t> seeds,
                     std::size_t n_threads) {
  CampaignSet set;
  set.runs.resize(seeds.size());
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t workers = std::min(n_threads, seeds.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      set.runs[i] = run_campaign(cfg, seeds[i]);
    }
  } else {
    // Slot-indexed writes: runs[i] belongs to seeds[i] no matter which
    // worker executes it or in what order jobs finish.
    std::vector<std::exception_ptr> errors(seeds.size());
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      pool.submit([&cfg, &set, &errors, &seeds, i] {
        try {
          set.runs[i] = run_campaign(cfg, seeds[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  std::vector<core::CampaignScore> scores;
  scores.reserve(set.runs.size());
  for (const auto& r : set.runs) scores.push_back(r.score);
  set.summary = core::summarize_scores(scores);
  // Fleet snapshot: merge per-seed scrapes in seed order — deterministic at
  // any thread count because each scrape is itself single-thread-recorded.
  for (const auto& r : set.runs) set.fleet.merge(r.metrics);
  return set;
}

CampaignSet run_many(const CampaignConfig& cfg, std::uint64_t master_seed,
                     std::size_t n_runs, std::size_t n_threads) {
  const auto seeds = split_seeds(master_seed, n_runs);
  return run_many(cfg, seeds, n_threads);
}

}  // namespace skh::runner
