// The worker pool moved to common/pool.h so that core/'s sharded analyzer
// (which runner/ links against) can drive its shards on the same
// implementation. This header keeps the historical `skh::runner::ThreadPool`
// spelling working for the campaign runner and its tests.
#pragma once

#include "common/pool.h"

namespace skh::runner {

using common::ThreadPool;

}  // namespace skh::runner
