// Monte-Carlo campaign runner: N independent fault-injection campaigns,
// optionally in parallel, with bit-identical results at any thread count.
//
// One campaign = one fully isolated simulated deployment (its own
// Experiment, hence its own EventQueue, FaultInjector, orchestrator, and
// SkeletonHunter) driven by a deterministically derived seed. Because each
// run's RNG stream depends only on (master seed, run index) — see
// split_seed in common/rng.h — the per-seed CampaignScore vector is a pure
// function of (config, seeds), independent of thread count and OS
// scheduling. run_many is the facade every sweep/ablation bench builds on:
// it fans runs across a ThreadPool and folds the per-seed scores into a
// ScoreSummary (mean / stddev / 95% CI per §7.1 metric).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/harness.h"
#include "core/metrics.h"
#include "obs/metrics.h"
#include "sim/fault.h"

namespace skh::runner {

/// Shape of one tenant task launched at campaign start.
struct TaskShape {
  std::uint32_t containers = 8;
  std::uint32_t gpus_per_container = 8;  ///< tensor-parallel degree (tp)
  std::uint32_t dp = 4;                  ///< data-parallel replicas
  std::uint32_t pp = 2;                  ///< pipeline stages
};

/// Everything a campaign does except the seed. The same config replayed
/// with the same seed reproduces the identical fault schedule and score.
struct CampaignConfig {
  topo::TopologyConfig topology{.num_hosts = 32,
                                .rails_per_host = 8,
                                .hosts_per_segment = 8};
  core::SkeletonHunterConfig hunter{};
  std::vector<TaskShape> tasks{{8, 8, 4, 2}, {4, 8, 2, 2}};
  SimTime task_lifetime = SimTime::hours(24);

  /// Probe-visible faults, cycling over `issue_mix` in order; victims are
  /// drawn from the campaign's own RNG stream.
  std::size_t visible_faults = 12;
  std::vector<sim::IssueType> issue_mix{
      sim::IssueType::kCrcError,
      sim::IssueType::kSwitchPortDown,
      sim::IssueType::kSwitchPortFlapping,
      sim::IssueType::kRnicHardwareFailure,
      sim::IssueType::kRnicPortDown,
      sim::IssueType::kGidChange,
      sim::IssueType::kNotUsingRdma,
      sim::IssueType::kPcieNicError,
  };
  /// Intra-host (probe-invisible) faults: the §7.3 recall bound.
  std::size_t invisible_faults = 1;
  /// Crashed sidecar agents (phantoms): the §7.3 precision bound.
  std::size_t phantom_agents = 1;

  SimTime warmup = SimTime::minutes(5);       ///< before the first fault
  SimTime fault_gap = SimTime::minutes(11);   ///< spacing between faults
  SimTime fault_duration = SimTime::minutes(6);
  SimTime drain = SimTime::minutes(20);       ///< probing past the last fault

  /// Mid-run churn: per-task restart / migration events scheduled from the
  /// campaign's own "churn-plan" RNG fork, so the plan — like the fault
  /// schedule — is a pure function of the seed and bit-identical at any
  /// runner thread count. 0/0 disables churn.
  std::size_t churn_restarts = 0;
  std::size_t churn_migrations = 0;
  SimTime churn_start = SimTime::minutes(8);    ///< after campaign start
  SimTime churn_spacing = SimTime::minutes(4);

  /// Gray measurement plane: number of telemetry fault episodes, cycling
  /// over the kinds in sim::make_telemetry_storm, scheduled from the
  /// campaign's own "telemetry-plan" RNG fork (bit-identical at any thread
  /// count). 0 keeps the channel honest — zero extra RNG draws, so existing
  /// seeds replay unchanged.
  std::size_t telemetry_faults = 0;
  SimTime telemetry_start = SimTime::minutes(6);
  SimTime telemetry_spacing = SimTime::minutes(9);
  SimTime telemetry_duration = SimTime::minutes(4);

  /// Collective signal plane: when enabled, every launched task registers
  /// its communicators and emits per-iteration step traces; host-side
  /// fault episodes (hang / straggler / slow host — invisible to the probe
  /// mesh) come from the campaign's own "collective-plan" RNG fork,
  /// cycling through sim::make_collective_storm. Off by default: zero
  /// extra RNG draws, so existing seeds replay unchanged.
  bool collective_plane = false;
  std::size_t collective_faults = 0;
  SimTime collective_start = SimTime::minutes(7);
  SimTime collective_spacing = SimTime::minutes(10);
  SimTime collective_duration = SimTime::minutes(5);

  core::ScoreConfig score{};

  /// Per-campaign observability (one registry + tracer per seed, recorded
  /// on whichever worker runs the seed, so scrapes stay bit-stable at any
  /// thread count). `obs.metrics = false` detaches everything — the
  /// pre-obs baseline the overhead bench compares against.
  obs::ObsConfig obs{};
};

/// One campaign's outcome. `faults` is the injected ground-truth schedule,
/// kept so callers (and the determinism tests) can compare schedules
/// across seeds and thread counts.
struct RunResult {
  std::uint64_t seed = 0;
  core::CampaignScore score{};
  std::vector<sim::Fault> faults;
  std::size_t tasks_launched = 0;
  std::size_t failure_cases = 0;
  std::size_t probes_sent = 0;
  /// Churn events scheduled across all monitored tasks this run.
  std::size_t churn_events = 0;
  /// Telemetry fault episodes the measurement plane applied this run.
  std::size_t telemetry_events = 0;
  /// Detector ingest counters; pool across runs with core::merge_counters.
  core::DetectorCounters detector{};
  /// End-of-campaign registry scrape (empty when `cfg.obs.metrics` is off).
  obs::MetricsSnapshot metrics{};
  /// p99 of the end-to-end ingest-to-verdict latency histogram
  /// (`latency.ingest_to_verdict_s`), in sim-time seconds; 0 when obs is
  /// off or no case reached a verdict this run.
  double p99_verdict_latency_s = 0.0;
  /// Forensic bundles resident in the flight recorder at campaign end.
  std::size_t forensic_bundles = 0;
  /// Host-side collective fault episodes scheduled this run.
  std::size_t collective_events = 0;
  /// kTenantVisibleNetworkSilent cases the collective plane filed.
  std::size_t cases_network_silent = 0;
  /// Collective step records the diagnoser ingested.
  std::uint64_t collective_steps = 0;
  /// Chained FNV-1a over every emitted step record (0x...325 basis when
  /// the plane is off) — compared verbatim by the determinism gates.
  std::uint64_t collective_fingerprint = 0;
};

/// run_many's aggregate: per-seed results in input-seed order plus the
/// cross-seed statistical summary.
struct CampaignSet {
  std::vector<RunResult> runs;
  core::ScoreSummary summary;
  /// Fleet snapshot: per-seed registries merged in seed order — the
  /// cross-campaign totals `production_campaign` prints.
  obs::MetricsSnapshot fleet{};
};

/// Execute one campaign to completion on the calling thread.
[[nodiscard]] RunResult run_campaign(const CampaignConfig& cfg,
                                     std::uint64_t seed);

/// Execute one campaign per seed across `n_threads` workers (0 = hardware
/// concurrency; 1 = sequential on the calling thread). runs[i] always
/// corresponds to seeds[i] and is bit-identical at any thread count.
[[nodiscard]] CampaignSet run_many(const CampaignConfig& cfg,
                                   std::span<const std::uint64_t> seeds,
                                   std::size_t n_threads = 0);

/// Convenience: derive `n_runs` seeds from `master_seed` via split_seed.
[[nodiscard]] CampaignSet run_many(const CampaignConfig& cfg,
                                   std::uint64_t master_seed,
                                   std::size_t n_runs,
                                   std::size_t n_threads = 0);

}  // namespace skh::runner
