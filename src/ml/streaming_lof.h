// Incremental Local Outlier Factor over a sliding reference window.
//
// The §5.2 hot path scores every closed 30-second window against a
// look-back population that changes by exactly one point per window close
// (the new window enters, the oldest leaves). `lof_score_of` rebuilds the
// whole model from scratch for each query — O(n²) distances plus ~2n heap
// allocations per close. `StreamingLof` keeps the reference points
// resident in fixed ring slots instead — ages rotate via a head index, so
// nothing is ever shifted — and derives everything else (pairwise
// distances, each point's k-distance, neighborhood size, and local
// reachability density) lazily, at most once per score.
//
// The laziness is shaped to the detector's asymmetry: every window close
// pushes and pops, but the O(1) magnitude gate skips the scoring pass on
// almost every close. So a push stores just the point — one cache line —
// and a pop just advances the head; neither computes a single distance.
// The rare close that actually scores materializes the full pairwise
// matrix into per-model scratch (O(n² · dim), but n is the look-back
// depth and the scratch is L1-resident), then caches it: repeated scores
// against an unchanged ring reuse matrix, k-distances, and densities
// outright. The scratch matrix is also only allocated by that first
// scoring close, so the fleet-wide steady state — thousands of models,
// none anomalous — never holds a matrix at all. Diagonal, dead-slot, and
// never-used cells carry a huge finite sentinel, which keeps every
// scoring sweep dense and branch-light (masked slots contribute an exact
// 0.0).
//
// Storage is one 64-byte-aligned arena per model (points, k-distances,
// densities, candidate buffers as sections at fixed offsets) instead of a
// vector per concern: at fleet scale one model lives inside every pair's
// cold state, and the detector's window close walks models round-robin —
// one allocation per model keeps a close's working set to a handful of
// consecutive cache lines and the object header small. Section offsets
// are plain members, so a value copy (detector snapshots copy the model)
// stays a straight vector copy.
//
// Scoring contract: `score(q)` returns what `lof_score_of(q, reference,
// cfg)` returns for the current reference set, to floating-point rounding
// (slot order permutes the reach-distance summation order; pinned by
// tests/ml/test_streaming_lof.cpp). Two paths produce that result:
//  - fast path: when q lies strictly outside every reference point's
//    k-distance ball, appending q could not change any cached k-distance,
//    neighborhood, or LRD, so q's score is assembled directly from the
//    cached densities.
//  - virtual insert: when q would enter (or tie into) some k-neighborhood,
//    the affected k-distances and densities are recomputed *as if* q were a
//    reference point — pure reads of the matrix plus q's distance row, no
//    mutation, nothing to undo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_table.h"
#include "ml/lof.h"

namespace skh::ml {

/// Sliding-window LOF scorer. Points enter newest-last via `push` and leave
/// oldest-first via `pop_front`, mirroring the detector's look-back deque.
class StreamingLof {
 public:
  /// `capacity_hint` pre-sizes the ring (the look-back depth); the ring
  /// grows if exceeded.
  explicit StreamingLof(LofConfig cfg, std::size_t capacity_hint = 0);

  /// Append the newest reference point — one point copy, no distance
  /// work. All points must share one dimension.
  void push(std::span<const double> point);

  /// Drop the oldest reference point: advance the ring head. O(1); the
  /// evicted entry simply stops being consulted.
  void pop_front();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// LOF score of `query` against the current reference set; exactly
  /// `lof_score_of(query, reference, cfg)`. Returns the neutral score 1.0
  /// when the reference holds <= k points, like the batch scorer.
  [[nodiscard]] double score(std::span<const double> query);

  /// In-model score of the newest point against the rest — exactly
  /// `score(newest)` had it been asked *before* that point was pushed,
  /// because the batch scorer also appends its query to the reference
  /// before scoring. This is the hot-path form: `push` already wrote the
  /// distance row, so one lazy `refresh` plus an O(n) cached-density read
  /// answers it, with no virtual-insert work at all.
  [[nodiscard]] double last_score();

  /// Scores answered from cached densities alone.
  [[nodiscard]] std::uint64_t fast_path_scores() const noexcept {
    return fast_scores_;
  }
  /// Scores that required the virtual-insert recompute (query entered a
  /// reference point's k-neighborhood).
  [[nodiscard]] std::uint64_t fallback_scores() const noexcept {
    return fallback_scores_;
  }
  /// Entry k-smallest candidate buffers rebuilt by a full row scan — the
  /// lazy k-distance derivation a score pays after pushes/pops that, by
  /// design, did no buffer maintenance of their own.
  [[nodiscard]] std::uint64_t kdist_rebuilds() const noexcept {
    return kdist_rebuilds_;
  }

 private:
  void grow(std::size_t min_cap);
  /// Position of `slot` in push order, measured from the ring head
  /// (0 = oldest live entry; >= size_ means the slot is dead).
  [[nodiscard]] std::size_t age_of(std::size_t slot) const noexcept {
    std::size_t rel = slot + cap_ - head_;
    rel -= cap_ * static_cast<std::size_t>(rel >= cap_);
    return rel;
  }
  /// Whether `slot` currently holds a live entry.
  [[nodiscard]] bool is_live(std::size_t slot) const noexcept {
    return age_of(slot) < size_;
  }
  /// Materialize the pairwise squared-distance matrix for the current
  /// ring into `dmat_` (allocating it on first use), unless it is still
  /// current. Diagonal, dead-slot, and never-written cells carry the
  /// sentinel.
  void ensure_matrix();
  /// Rebuild entry i's k-smallest candidate buffer from its matrix row.
  void build_top(std::size_t i);
  /// Bring every entry's cached k-distance current, materializing the
  /// matrix and rebuilding the candidate buffers when push/pop
  /// invalidated them. O(n * k) then, O(n) when still current.
  void ensure_kdist();
  /// One entry's reachability density and neighborhood size from current
  /// k-distances — one branch-light row sweep.
  [[nodiscard]] std::pair<double, std::size_t> density_of(
      std::size_t i) const noexcept;
  /// Re-derive every entry's k-distance, neighborhood size, and LRD.
  void refresh();
  /// k-th smallest (duplicates counted) of `row` over all slots, with
  /// `extra` as one additional candidate value (pass a negative value for
  /// none). Sentinel-valued diagonal and dead cells never rank (k-th
  /// smallest is asked only when k live entries exist).
  [[nodiscard]] double kth_distance(const double* row, double extra);

  // Arena sections (offsets in doubles, fixed per capacity, recomputed
  // only by `grow`). The distance-valued sections hold *squared*
  // distances — see streaming_lof.cpp for the exactness argument.
  [[nodiscard]] double* pts() noexcept { return arena_.data(); }
  [[nodiscard]] const double* pts() const noexcept { return arena_.data(); }
  [[nodiscard]] double* k_dist() noexcept {
    return arena_.data() + kdist_off_;
  }
  [[nodiscard]] const double* k_dist() const noexcept {
    return arena_.data() + kdist_off_;
  }
  [[nodiscard]] double* lrd() noexcept { return arena_.data() + lrd_off_; }
  [[nodiscard]] const double* lrd() const noexcept {
    return arena_.data() + lrd_off_;
  }
  [[nodiscard]] double* top() noexcept { return arena_.data() + top_off_; }
  [[nodiscard]] const double* top() const noexcept {
    return arena_.data() + top_off_;
  }

  LofConfig cfg_;
  std::size_t dim_ = 0;  ///< point dimension, fixed by the first push
  std::size_t cap_ = 0;  ///< allocated ring slots
  /// One 64-byte-aligned block: points (cap x dim, row-major), cached
  /// squared k-distance per entry, cached LRD per entry, and the
  /// per-entry sorted buffers of (up to) the 2k smallest distances. The
  /// caches are scratch, not maintained across push/pop: the detector's
  /// magnitude gate means almost no window close scores, so they are
  /// rebuilt only when a score actually asks (`ensure_kdist`).
  std::vector<double, common::ArenaAllocator<double>> arena_;
  std::size_t kdist_off_ = 0;
  std::size_t lrd_off_ = 0;
  std::size_t top_off_ = 0;
  /// Pairwise squared-distance matrix (cap x cap), materialized from the
  /// resident points by the first score after a push/pop and cached until
  /// the ring changes again. Deliberately OUTSIDE the arena and lazily
  /// allocated: in the fleet-wide steady state almost no model ever
  /// scores, and those models should not carry O(cap²) of matrix each.
  std::vector<double> dmat_;
  std::vector<std::size_t> n_nbrs_;   ///< cached neighborhood size per entry
  std::vector<std::size_t> top_len_;  ///< valid prefix per candidate buffer
  std::size_t size_ = 0;  ///< live entries
  std::size_t head_ = 0;  ///< slot of the oldest live entry
  // Staleness after push/pop, cleared lazily: the matrix, candidate
  // buffers, and k-distances on any score, the full density table only
  // when `score` needs it (`last_score` gets by with a handful of
  // on-demand densities).
  bool mat_dirty_ = true;
  bool top_dirty_ = false;
  bool kd_dirty_ = false;
  bool lrd_dirty_ = false;
  // Reused scratch; sized lazily at first use, so an un-scored model (the
  // common case under the magnitude gate) never allocates it.
  std::vector<double> qd_;        ///< query distance row
  std::vector<double> vkd_;       ///< virtual k-distances under insert
  std::vector<double> kbuf_;      ///< selection buffer (k smallest)
  std::vector<std::pair<double, std::size_t>> nbuf_;   ///< (dist, index) sort
  std::vector<std::pair<double, std::size_t>> nbuf2_;  ///< inner-loop twin
  std::uint64_t fast_scores_ = 0;
  std::uint64_t fallback_scores_ = 0;
  std::uint64_t kdist_rebuilds_ = 0;
};

}  // namespace skh::ml
