// Incremental Local Outlier Factor over a sliding reference window.
//
// The §5.2 hot path scores every closed 30-second window against a
// look-back population that changes by exactly one point per window close
// (the new window enters, the oldest leaves). `lof_score_of` rebuilds the
// whole model from scratch for each query — O(n²) distances plus ~2n heap
// allocations per close. `StreamingLof` keeps the model resident instead:
// a flat pairwise-distance matrix over fixed ring slots, plus each point's
// cached k-distance, neighborhood size, and local reachability density.
// Entries keep their slot for life — ages rotate via a head index — so a
// push writes one matrix row/column and a pop retires one column; nothing
// is ever shifted. Evicted and never-used slots are masked with the huge
// finite diagonal sentinel, which keeps every scoring sweep dense and
// branch-light (masked slots contribute an exact 0.0). The cached
// densities are re-derived lazily (at most once per score, and only from
// the resident matrix — no allocation, no distance recompute).
//
// Scoring contract: `score(q)` returns what `lof_score_of(q, reference,
// cfg)` returns for the current reference set, to floating-point rounding
// (slot order permutes the reach-distance summation order; pinned by
// tests/ml/test_streaming_lof.cpp). Two paths produce that result:
//  - fast path: when q lies strictly outside every reference point's
//    k-distance ball, appending q could not change any cached k-distance,
//    neighborhood, or LRD, so q's score is assembled directly from the
//    cached densities.
//  - virtual insert: when q would enter (or tie into) some k-neighborhood,
//    the affected k-distances and densities are recomputed *as if* q were a
//    reference point — pure reads of the matrix plus q's distance row, no
//    mutation, nothing to undo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/lof.h"

namespace skh::ml {

/// Sliding-window LOF scorer. Points enter newest-last via `push` and leave
/// oldest-first via `pop_front`, mirroring the detector's look-back deque.
class StreamingLof {
 public:
  /// `capacity_hint` pre-sizes the ring (the look-back depth); the ring
  /// grows if exceeded.
  explicit StreamingLof(LofConfig cfg, std::size_t capacity_hint = 0);

  /// Append the newest reference point. All points must share one dimension.
  void push(std::span<const double> point);

  /// Drop the oldest reference point: retire its distances from the
  /// surviving candidate buffers, mask its column with the sentinel, and
  /// advance the ring head. O(n), no data movement.
  void pop_front();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// LOF score of `query` against the current reference set; exactly
  /// `lof_score_of(query, reference, cfg)`. Returns the neutral score 1.0
  /// when the reference holds <= k points, like the batch scorer.
  [[nodiscard]] double score(std::span<const double> query);

  /// In-model score of the newest point against the rest — exactly
  /// `score(newest)` had it been asked *before* that point was pushed,
  /// because the batch scorer also appends its query to the reference
  /// before scoring. This is the hot-path form: `push` already wrote the
  /// distance row, so one lazy `refresh` plus an O(n) cached-density read
  /// answers it, with no virtual-insert work at all.
  [[nodiscard]] double last_score();

  /// Scores answered from cached densities alone.
  [[nodiscard]] std::uint64_t fast_path_scores() const noexcept {
    return fast_scores_;
  }
  /// Scores that required the virtual-insert recompute (query entered a
  /// reference point's k-neighborhood).
  [[nodiscard]] std::uint64_t fallback_scores() const noexcept {
    return fallback_scores_;
  }
  /// Times an entry's k-smallest candidate buffer drained below k and had
  /// to be rebuilt by a full row scan (the batch-recompute fallback of the
  /// incremental k-distance maintenance).
  [[nodiscard]] std::uint64_t kdist_rebuilds() const noexcept {
    return kdist_rebuilds_;
  }

 private:
  void grow(std::size_t min_cap);
  /// Whether `slot` currently holds a live entry (its age, measured from
  /// the ring head, is below the live count).
  [[nodiscard]] bool is_live(std::size_t slot) const noexcept {
    std::size_t rel = slot + cap_ - head_;
    rel -= cap_ * static_cast<std::size_t>(rel >= cap_);
    return rel < size_;
  }
  /// Rebuild entry i's k-smallest candidate buffer from its full row.
  void build_top(std::size_t i);
  /// Fold one new row value d into entry i's candidate buffer, preserving
  /// the invariant that the buffer holds the smallest `top_len_[i]` row
  /// entries. A value above the buffer max with a non-full buffer is
  /// dropped — accepting it would need the unknown next order statistic.
  void top_insert(std::size_t i, double d);
  /// Remove one instance of row value d from entry i's buffer if present.
  void top_remove(std::size_t i, double d);
  /// Bring every entry's cached k-distance current, reading straight from
  /// the maintained candidate buffers (rebuilt on drain). O(n).
  void ensure_kdist();
  /// One entry's reachability density and neighborhood size from current
  /// k-distances — one branch-light row sweep.
  [[nodiscard]] std::pair<double, std::size_t> density_of(
      std::size_t i) const noexcept;
  /// Re-derive every entry's k-distance, neighborhood size, and LRD.
  void refresh();
  /// k-th smallest (duplicates counted) of `row` over all slots, with
  /// `extra` as one additional candidate value (pass a negative value for
  /// none). The sentinel on diagonal and dead columns keeps them from
  /// ranking (k-th smallest is asked only when k live entries exist).
  [[nodiscard]] double kth_distance(const double* row, double extra);

  LofConfig cfg_;
  std::size_t dim_ = 0;  ///< point dimension, fixed by the first push
  std::size_t cap_ = 0;  ///< allocated ring slots
  /// Entry points by slot, flat row-major (cap x dim). One allocation
  /// instead of a vector per point: at fleet scale the per-pair models are
  /// touched round-robin and the flat rows keep each close's working set
  /// to a few cache lines.
  std::vector<double> pts_;
  /// cap x cap pairwise distances by slot; the diagonal and every dead
  /// slot's column are pinned to a huge finite sentinel so no scoring loop
  /// needs a self-exclusion or liveness branch.
  std::vector<double> dist_;
  std::vector<double> k_dist_;       ///< cached k-distance per entry
  std::vector<double> lrd_;          ///< cached density per entry
  std::vector<std::size_t> n_nbrs_;  ///< cached neighborhood size per entry
  /// Per-entry sorted buffer of (up to) the 2k smallest row distances,
  /// maintained across push/pop so a close reads k-distances in O(1)
  /// instead of re-selecting over the row. Flat cap x 2k, row-major.
  std::vector<double> top_;
  std::vector<std::size_t> top_len_;  ///< valid prefix per buffer
  std::size_t size_ = 0;  ///< live entries
  std::size_t head_ = 0;  ///< slot of the oldest live entry
  // Staleness after push/pop, cleared lazily: k-distances on any score,
  // the full density table only when `score` needs it (`last_score` gets
  // by with a handful of on-demand densities).
  bool kd_dirty_ = false;
  bool lrd_dirty_ = false;
  // Reused scratch.
  std::vector<double> qd_;        ///< query distance row
  std::vector<double> vkd_;       ///< virtual k-distances under insert
  std::vector<double> kbuf_;      ///< selection buffer (k smallest)
  std::vector<std::pair<double, std::size_t>> nbuf_;   ///< (dist, index) sort
  std::vector<std::pair<double, std::size_t>> nbuf2_;  ///< inner-loop twin
  std::uint64_t fast_scores_ = 0;
  std::uint64_t fallback_scores_ = 0;
  std::uint64_t kdist_rebuilds_ = 0;
};

}  // namespace skh::ml
