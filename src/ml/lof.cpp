#include "ml/lof.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/stft.h"

namespace skh::ml {

namespace {

constexpr double kDistanceFloor = kLofDistanceFloor;

/// Distances from point i to all other points, paired with indices.
std::vector<std::pair<double, std::size_t>> sorted_distances(
    std::span<const double> from, const std::vector<std::vector<double>>& pts,
    std::size_t skip_index) {
  std::vector<std::pair<double, std::size_t>> d;
  d.reserve(pts.size());
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (j == skip_index) continue;
    d.emplace_back(
        std::max(kDistanceFloor, skh::dsp::euclidean_distance(from, pts[j])),
        j);
  }
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace

std::vector<double> lof_scores(const std::vector<std::vector<double>>& points,
                               const LofConfig& cfg) {
  const std::size_t n = points.size();
  if (cfg.k_neighbors == 0) {
    throw std::invalid_argument("lof_scores: k_neighbors must be > 0");
  }
  if (n <= cfg.k_neighbors) return std::vector<double>(n, 1.0);
  const std::size_t k = cfg.k_neighbors;

  // k-distance and k-neighborhood of each point.
  std::vector<double> k_dist(n);
  std::vector<std::vector<std::size_t>> neighbors(n);
  std::vector<std::vector<double>> neighbor_dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto d = sorted_distances(points[i], points, i);
    k_dist[i] = d[k - 1].first;
    // The k-neighborhood includes all points at distance <= k-distance.
    for (const auto& [dist, j] : d) {
      if (dist > k_dist[i]) break;
      neighbors[i].push_back(j);
      neighbor_dist[i].push_back(dist);
    }
  }

  // Local reachability density.
  std::vector<double> lrd(n);
  for (std::size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (std::size_t idx = 0; idx < neighbors[i].size(); ++idx) {
      const std::size_t j = neighbors[i][idx];
      reach_sum += std::max(k_dist[j], neighbor_dist[i][idx]);
    }
    lrd[i] = static_cast<double>(neighbors[i].size()) /
             std::max(reach_sum, kDistanceFloor);
  }

  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    double ratio_sum = 0.0;
    for (std::size_t j : neighbors[i]) ratio_sum += lrd[j] / lrd[i];
    scores[i] = ratio_sum / static_cast<double>(neighbors[i].size());
  }
  return scores;
}

double lof_score_of(std::span<const double> query,
                    const std::vector<std::vector<double>>& reference,
                    const LofConfig& cfg) {
  if (reference.size() <= cfg.k_neighbors) return 1.0;
  // Score the query against the reference population by appending it and
  // reading its score; the reference points dominate the density model.
  std::vector<std::vector<double>> all = reference;
  all.emplace_back(query.begin(), query.end());
  const auto scores = lof_scores(all, cfg);
  return scores.back();
}

}  // namespace skh::ml
