// Agglomerative hierarchical clustering, plus the constrained variant used
// by traffic-skeleton inference (§5.1, Eq. 1-3).
//
// Skeleton inference groups RNICs whose STFT features are similar; RNICs in
// one resulting group are in the same position across different DP
// (data-parallel) replicas. The paper constrains the grouping so that:
//   (Eq. 1) group sizes are balanced (minimum variance of |c_i|),
//   (Eq. 2) N is divisible by the rounded mean group size, and
//   (Eq. 3) no group contains two RNICs from the same host (same-host RNICs
//           communicate over NVLink, i.e. they belong to the same DP replica,
//           never the same position across replicas).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace skh::ml {

/// Feature matrix: one row per item.
using FeatureMatrix = std::vector<std::vector<double>>;

/// Result of a clustering run: assignment[i] = cluster index of item i,
/// clusters[c] = item indices of cluster c.
struct Clustering {
  std::vector<std::size_t> assignment;
  std::vector<std::vector<std::size_t>> clusters;

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return clusters.size();
  }
  /// Variance of cluster sizes — the objective of Eq. 1.
  [[nodiscard]] double size_variance() const;
};

/// Plain average-linkage agglomerative clustering down to `k` clusters using
/// Euclidean distance between feature rows. Used in the unconstrained
/// ablation and as the engine of the constrained variant.
[[nodiscard]] Clustering hierarchical_cluster(const FeatureMatrix& features,
                                              std::size_t k);

struct ConstrainedClusterConfig {
  /// host_of[i] = host index of item i; items sharing a host may not share a
  /// cluster (Eq. 3). Empty disables the constraint.
  std::vector<std::size_t> host_of;
  /// Candidate cluster counts to try; for skeleton inference these are the
  /// divisors k of N for which the balanced group size N/k is a plausible DP
  /// degree. Empty means "all divisors of N >= 2 with group size >= 2".
  std::vector<std::size_t> candidate_ks;
};

/// Constrained clustering per Eq. 1-3: for each candidate k, run
/// host-disjoint average-linkage clustering to k clusters, discard runs whose
/// group sizes violate Eq. 2 divisibility, and return the feasible run with
/// (a) minimum size variance and (b) among ties, minimum mean intra-cluster
/// feature distance. Returns nullopt when no candidate yields a feasible
/// clustering (e.g. the host constraint is unsatisfiable).
[[nodiscard]] std::optional<Clustering> constrained_cluster(
    const FeatureMatrix& features, const ConstrainedClusterConfig& cfg);

/// Mean pairwise intra-cluster distance (lower = tighter clusters); used to
/// break ties between candidate k values and reported by the ablation bench.
[[nodiscard]] double mean_intra_cluster_distance(const FeatureMatrix& features,
                                                 const Clustering& clustering);

}  // namespace skh::ml
