#include "ml/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "dsp/stft.h"

namespace skh::ml {

namespace {

/// Working state for agglomerative merging: live clusters as index lists,
/// plus (for the constrained variant) the set of hosts present per cluster.
struct MergeState {
  std::vector<std::vector<std::size_t>> members;
  std::vector<std::unordered_set<std::size_t>> hosts;
  bool host_constrained = false;

  [[nodiscard]] bool can_merge(std::size_t a, std::size_t b) const {
    if (!host_constrained) return true;
    for (std::size_t h : hosts[a]) {
      if (hosts[b].contains(h)) return false;
    }
    return true;
  }
};

double pair_distance(const FeatureMatrix& features,
                     const std::vector<std::size_t>& a,
                     const std::vector<std::size_t>& b) {
  // Average linkage: mean pairwise Euclidean distance.
  double sum = 0.0;
  for (std::size_t i : a) {
    for (std::size_t j : b) {
      sum += skh::dsp::euclidean_distance(features[i], features[j]);
    }
  }
  return sum / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

Clustering finalize(std::size_t n, std::vector<std::vector<std::size_t>> live) {
  Clustering out;
  // Deterministic ordering: by smallest member index.
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  out.clusters = std::move(live);
  out.assignment.assign(n, 0);
  for (std::size_t c = 0; c < out.clusters.size(); ++c) {
    std::sort(out.clusters[c].begin(), out.clusters[c].end());
    for (std::size_t i : out.clusters[c]) out.assignment[i] = c;
  }
  return out;
}

/// Core agglomerative loop; returns nullopt if the host constraint makes it
/// impossible to reach k clusters.
std::optional<Clustering> agglomerate(const FeatureMatrix& features,
                                      std::size_t k,
                                      const std::vector<std::size_t>& host_of) {
  const std::size_t n = features.size();
  if (k == 0 || k > n) {
    throw std::invalid_argument("agglomerate: k must be in [1, n]");
  }
  MergeState st;
  st.host_constrained = !host_of.empty();
  if (st.host_constrained && host_of.size() != n) {
    throw std::invalid_argument("agglomerate: host_of size mismatch");
  }
  st.members.reserve(n);
  st.hosts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.members.push_back({i});
    if (st.host_constrained) st.hosts[i].insert(host_of[i]);
  }

  while (st.members.size() > k) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    bool found = false;
    for (std::size_t i = 0; i < st.members.size(); ++i) {
      for (std::size_t j = i + 1; j < st.members.size(); ++j) {
        if (!st.can_merge(i, j)) continue;
        const double d = pair_distance(features, st.members[i], st.members[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
          found = true;
        }
      }
    }
    if (!found) return std::nullopt;  // constraint blocks all merges
    auto& a = st.members[bi];
    auto& b = st.members[bj];
    a.insert(a.end(), b.begin(), b.end());
    if (st.host_constrained) {
      st.hosts[bi].insert(st.hosts[bj].begin(), st.hosts[bj].end());
      st.hosts.erase(st.hosts.begin() + static_cast<long>(bj));
    }
    st.members.erase(st.members.begin() + static_cast<long>(bj));
  }
  return finalize(n, std::move(st.members));
}

}  // namespace

double Clustering::size_variance() const {
  if (clusters.empty()) return 0.0;
  double mean = 0.0;
  for (const auto& c : clusters) mean += static_cast<double>(c.size());
  mean /= static_cast<double>(clusters.size());
  double var = 0.0;
  for (const auto& c : clusters) {
    const double d = static_cast<double>(c.size()) - mean;
    var += d * d;
  }
  return var / static_cast<double>(clusters.size());
}

Clustering hierarchical_cluster(const FeatureMatrix& features, std::size_t k) {
  auto result = agglomerate(features, k, /*host_of=*/{});
  // Unconstrained agglomeration always succeeds.
  return std::move(*result);
}

std::optional<Clustering> constrained_cluster(
    const FeatureMatrix& features, const ConstrainedClusterConfig& cfg) {
  const std::size_t n = features.size();
  if (n == 0) return std::nullopt;

  std::vector<std::size_t> candidates = cfg.candidate_ks;
  if (candidates.empty()) {
    for (std::size_t k = 2; k <= n / 2; ++k) {
      if (n % k == 0) candidates.push_back(k);
    }
  }

  // Global distance scale: mean pairwise distance over all items, used to
  // decide whether a candidate clustering is "tight".
  double baseline = 0.0;
  std::size_t baseline_pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      baseline += skh::dsp::euclidean_distance(features[i], features[j]);
      ++baseline_pairs;
    }
  }
  if (baseline_pairs > 0) baseline /= static_cast<double>(baseline_pairs);

  struct Candidate {
    Clustering clustering;
    std::size_t k;
    double var;
    double intra;
  };
  std::vector<Candidate> feasible;
  for (std::size_t k : candidates) {
    if (k == 0 || k > n) continue;
    auto result = agglomerate(features, k, cfg.host_of);
    if (!result) continue;
    // Eq. 2: the rounded mean group size must divide N.
    const double mean_size =
        static_cast<double>(n) / static_cast<double>(result->num_clusters());
    const auto rounded = static_cast<std::size_t>(std::llround(mean_size));
    if (rounded == 0 || n % rounded != 0) continue;
    const double var = result->size_variance();
    const double intra = mean_intra_cluster_distance(features, *result);
    feasible.push_back(Candidate{std::move(*result), k, var, intra});
  }
  if (feasible.empty()) return std::nullopt;

  // Eq. 1: keep only minimum-variance candidates.
  double min_var = std::numeric_limits<double>::infinity();
  for (const auto& c : feasible) min_var = std::min(min_var, c.var);
  std::erase_if(feasible, [&](const Candidate& c) { return c.var > min_var; });

  // Among minimum-variance candidates, the correct k is the *smallest* one
  // whose clusters remain tight (splitting a true group keeps intra ~0 for
  // every larger k, so intra alone cannot pick k; merging distinct groups
  // makes intra jump toward the global baseline). Fall back to the tightest
  // candidate if nothing passes the elbow threshold.
  constexpr double kTightness = 0.25;
  std::sort(feasible.begin(), feasible.end(),
            [](const Candidate& a, const Candidate& b) { return a.k < b.k; });
  for (auto& c : feasible) {
    if (c.intra <= kTightness * baseline) return std::move(c.clustering);
  }
  auto best = std::min_element(
      feasible.begin(), feasible.end(),
      [](const Candidate& a, const Candidate& b) { return a.intra < b.intra; });
  return std::move(best->clustering);
}

double mean_intra_cluster_distance(const FeatureMatrix& features,
                                   const Clustering& clustering) {
  double sum = 0.0;
  std::size_t pairs = 0;
  for (const auto& cluster : clustering.clusters) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      for (std::size_t j = i + 1; j < cluster.size(); ++j) {
        sum += skh::dsp::euclidean_distance(features[cluster[i]],
                                            features[cluster[j]]);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace skh::ml
