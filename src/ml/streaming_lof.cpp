#include "ml/streaming_lof.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "dsp/stft.h"

namespace skh::ml {

namespace {
// Slot-mask sentinel: orders of magnitude above any real distance, so the
// self-distance and dead-slot columns never rank as neighbors, yet finite
// so the branch-free masked arithmetic below cannot produce 0 * inf = NaN.
constexpr double kDiagonal = 1e300;
}  // namespace

StreamingLof::StreamingLof(LofConfig cfg, std::size_t capacity_hint)
    : cfg_(cfg) {
  if (cfg_.k_neighbors == 0) {
    throw std::invalid_argument("StreamingLof: k_neighbors must be > 0");
  }
  kbuf_.resize(cfg_.k_neighbors);
  if (capacity_hint > 0) {
    cap_ = capacity_hint;
    // The whole matrix starts masked; a push unmasks exactly the live
    // cells of its row and column.
    dist_.assign(cap_ * cap_, kDiagonal);
    k_dist_.assign(cap_, 0.0);
    lrd_.assign(cap_, 0.0);
    n_nbrs_.assign(cap_, 0);
    top_.assign(cap_ * 2 * cfg_.k_neighbors, 0.0);
    top_len_.assign(cap_, 0);
  }
}

void StreamingLof::grow(std::size_t min_cap) {
  const std::size_t old_cap = cap_;
  const std::size_t cap =
      std::max({static_cast<std::size_t>(8), old_cap * 2, min_cap});
  const std::size_t s = 2 * cfg_.k_neighbors;
  // Re-lay the survivors compacted in age order (head back to slot 0);
  // every cell outside the live block stays masked.
  std::vector<double> nd(cap * cap, kDiagonal);
  std::vector<double> nt(cap * s, 0.0);
  std::vector<double> np(cap * dim_, 0.0);
  std::vector<std::size_t> nl(cap, 0);
  for (std::size_t a = 0; a < size_; ++a) {
    const std::size_t oa = (head_ + a) % old_cap;
    for (std::size_t b = 0; b < size_; ++b) {
      nd[a * cap + b] = dist_[oa * old_cap + (head_ + b) % old_cap];
    }
    std::copy_n(top_.data() + oa * s, s, nt.data() + a * s);
    nl[a] = top_len_[oa];
    if (dim_ > 0 && !pts_.empty()) {
      std::copy_n(pts_.data() + oa * dim_, dim_, np.data() + a * dim_);
    }
  }
  cap_ = cap;
  head_ = 0;
  dist_ = std::move(nd);
  top_ = std::move(nt);
  top_len_ = std::move(nl);
  pts_ = std::move(np);
  k_dist_.assign(cap, 0.0);
  lrd_.assign(cap, 0.0);
  n_nbrs_.assign(cap, 0);
}

void StreamingLof::build_top(std::size_t i) {
  const std::size_t s = 2 * cfg_.k_neighbors;
  const double* __restrict row = dist_.data() + i * cap_;
  double* __restrict buf = top_.data() + i * s;
  // Streaming top-s over the full row via a branch-free insertion network;
  // the sentinel on the diagonal and dead columns sorts past every real
  // distance.
  for (std::size_t p = 0; p < s; ++p) buf[p] = kDiagonal;
  for (std::size_t j = 0; j < cap_; ++j) {
    double d = row[j];
    for (std::size_t p = 0; p < s; ++p) {
      const double lo = std::min(buf[p], d);
      d = std::max(buf[p], d);
      buf[p] = lo;
    }
  }
  std::size_t len = std::min(size_ > 0 ? size_ - 1 : 0, s);
  top_len_[i] = len;
}

void StreamingLof::top_insert(std::size_t i, double d) {
  const std::size_t s = 2 * cfg_.k_neighbors;
  double* __restrict buf = top_.data() + i * s;
  const std::size_t len = top_len_[i];
  if (len == 0) return;  // drained; refresh will rebuild
  if (d > buf[len - 1]) {
    // Above the buffer max: with a full buffer it simply doesn't rank;
    // with a partial one, accepting it would need the order statistic the
    // earlier removals erased. Either way the buffer still holds the
    // smallest `len` entries of the grown row.
    return;
  }
  const std::size_t cap_len = std::min(len + 1, s);
  std::size_t pos = 0;  // branch-free position scan over the tiny buffer
  for (std::size_t p = 0; p + 1 < cap_len; ++p) pos += buf[p] <= d;
  std::copy_backward(buf + pos, buf + cap_len - 1, buf + cap_len);
  buf[pos] = d;
  top_len_[i] = cap_len;
}

void StreamingLof::top_remove(std::size_t i, double d) {
  const std::size_t s = 2 * cfg_.k_neighbors;
  double* __restrict buf = top_.data() + i * s;
  const std::size_t len = top_len_[i];
  if (len == 0 || d > buf[len - 1]) return;  // not in the buffer
  std::size_t pos = 0;  // first instance of d, branch-free
  for (std::size_t p = 0; p < len; ++p) pos += buf[p] < d;
  std::copy(buf + pos + 1, buf + len, buf + pos);
  top_len_[i] = len - 1;
}

void StreamingLof::push(std::span<const double> point) {
  if (dim_ == 0) {
    dim_ = point.size();
  } else if (point.size() != dim_) {
    throw std::invalid_argument("StreamingLof: mixed point dimensions");
  }
  if (size_ == cap_) grow(size_ + 1);
  if (pts_.size() != cap_ * dim_) pts_.resize(cap_ * dim_);
  const std::size_t cap = cap_;
  const std::size_t slot = (head_ + size_) % cap;
  std::copy_n(point.data(), dim_, pts_.data() + slot * dim_);
  double* row = dist_.data() + slot * cap;
  for (std::size_t j = 0; j < cap; ++j) {
    if (is_live(j)) {
      const double d = std::max(
          kLofDistanceFloor,
          skh::dsp::euclidean_distance(
              point, std::span<const double>{pts_.data() + j * dim_, dim_}));
      row[j] = d;
      dist_[j * cap + slot] = d;
      top_insert(j, d);
    } else {
      // Self, evicted, and never-used slots stay masked. Dead rows are not
      // touched: a slot's whole row is rewritten when a push reuses it.
      row[j] = kDiagonal;
    }
  }
  ++size_;
  build_top(slot);
  kd_dirty_ = true;
  lrd_dirty_ = true;
}

void StreamingLof::pop_front() {
  if (size_ == 0) return;
  const std::size_t cap = cap_;
  const std::size_t e = head_;
  // Retire the evicted entry's distances from the surviving candidate
  // buffers and mask its column; its own row is left for the push that
  // reuses the slot to overwrite. No data moves.
  for (std::size_t j = 0; j < cap; ++j) {
    if (j == e) continue;
    top_remove(j, dist_[j * cap + e]);  // no-op on dead/drained buffers
    dist_[j * cap + e] = kDiagonal;
  }
  top_len_[e] = 0;
  head_ = (e + 1) % cap;
  --size_;
  kd_dirty_ = true;
  lrd_dirty_ = true;
}

double StreamingLof::kth_distance(const double* row, double extra) {
  const std::size_t k = cfg_.k_neighbors;
  double* kb = kbuf_.data();  // sized k at construction
  std::size_t filled = 0;
  const auto consider = [&](double d) {
    std::size_t pos;
    if (filled < k) {
      pos = filled++;
    } else if (d < kb[k - 1]) {
      pos = k - 1;
    } else {
      return;
    }
    while (pos > 0 && kb[pos - 1] > d) {
      kb[pos] = kb[pos - 1];
      --pos;
    }
    kb[pos] = d;
  };
  // Masked columns carry the sentinel; with >= k live entries they can
  // never be the k-th smallest, so the sweep needs no liveness branch.
  for (std::size_t j = 0; j < cap_; ++j) consider(row[j]);
  if (extra >= 0.0) consider(extra);
  return kb[k - 1];
}

void StreamingLof::ensure_kdist() {
  if (!kd_dirty_) return;
  // k-distances straight from the incrementally maintained candidate
  // buffers — O(1) per entry. A buffer that drained below k (too many
  // evictions landed inside it) is rebuilt from its row; the slack of k
  // extra candidates makes that the rare fallback, counted in
  // `kdist_rebuilds`.
  const std::size_t k = cfg_.k_neighbors;
  const std::size_t s = 2 * k;
  for (std::size_t i = 0; i < cap_; ++i) {
    if (!is_live(i)) {
      // Zero keeps dead slots out of the query-divergence test (their
      // sentinel query distance can never be <= 0) while staying finite
      // for the masked reach arithmetic.
      k_dist_[i] = 0.0;
      continue;
    }
    if (top_len_[i] < k) {
      ++kdist_rebuilds_;
      build_top(i);
    }
    k_dist_[i] = top_[i * s + k - 1];
  }
  kd_dirty_ = false;
}

std::pair<double, std::size_t> StreamingLof::density_of(
    std::size_t i) const noexcept {
  const std::size_t n = cap_;
  // Restrict-qualified locals: the members provably never alias, but the
  // compiler cannot see that through `this`, and the reloads it emits to
  // stay safe cost ~4x on this tight loop. Reach distances are summed in
  // slot rather than distance order — addition reordering only, within
  // the documented FP tolerance of the batch scorer. The arithmetic mask
  // adds an exact 0.0 for excluded slots (diagonal and dead columns carry
  // the sentinel), so included terms are bit-identical to a branchy
  // gather.
  const double* __restrict row = dist_.data() + i * cap_;
  const double* __restrict kds = k_dist_.data();
  const double kd = kds[i];
  double reach = 0.0;
  std::size_t nn = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = row[j];
    const bool in = d <= kd;
    reach += static_cast<double>(in) * std::max(kds[j], d);
    nn += in;
  }
  return {static_cast<double>(nn) / std::max(reach, kLofDistanceFloor), nn};
}

void StreamingLof::refresh() {
  ensure_kdist();
  for (std::size_t i = 0; i < cap_; ++i) {
    if (is_live(i)) {
      const auto [lrd, nn] = density_of(i);
      lrd_[i] = lrd;
      n_nbrs_[i] = nn;
    } else {
      lrd_[i] = 0.0;
      n_nbrs_[i] = 0;
    }
  }
  lrd_dirty_ = false;
}

double StreamingLof::last_score() {
  const std::size_t k = cfg_.k_neighbors;
  // Reference = everything but the newest point; <= k of those is the
  // batch scorer's neutral regime.
  if (size_ == 0 || size_ - 1 <= k) return 1.0;
  ensure_kdist();
  ++fast_scores_;
  const std::size_t q = (head_ + size_ - 1) % cap_;
  const double* __restrict row = dist_.data() + q * cap_;
  const double kd = k_dist_[q];
  // Only the newest point's own density and its neighbors' densities feed
  // the score, so compute just those instead of refreshing the full table.
  // The sweep covers every slot: the diagonal and dead columns carry the
  // sentinel and can never pass the k-distance gate.
  const auto [lrd_q, nn_q] = density_of(q);
  double ratio_sum = 0.0;
  for (std::size_t m = 0; m < cap_; ++m) {
    if (row[m] <= kd) ratio_sum += density_of(m).first / lrd_q;
  }
  return ratio_sum / static_cast<double>(nn_q);
}

double StreamingLof::score(std::span<const double> query) {
  const std::size_t k = cfg_.k_neighbors;
  if (size_ <= k) return 1.0;
  if (kd_dirty_ || lrd_dirty_) refresh();
  const std::size_t cap = cap_;

  qd_.resize(cap);
  bool diverges = false;
  for (std::size_t i = 0; i < cap; ++i) {
    if (!is_live(i)) {
      qd_[i] = kDiagonal;  // sorts past every live entry, gates nothing
      continue;
    }
    const double d = std::max(
        kLofDistanceFloor,
        skh::dsp::euclidean_distance(
            query, std::span<const double>{pts_.data() + i * dim_, dim_}));
    qd_[i] = d;
    // The cached model stays valid only while the query sits strictly
    // outside every k-distance ball: at d <= k_dist the query enters (or
    // ties into) that point's neighborhood and the densities shift.
    if (d <= k_dist_[i]) diverges = true;
  }
  nbuf_.clear();
  for (std::size_t i = 0; i < cap; ++i) nbuf_.emplace_back(qd_[i], i);
  std::sort(nbuf_.begin(), nbuf_.end());
  const double kq = nbuf_[k - 1].first;
  std::size_t nnq = k;
  while (nnq < size_ && nbuf_[nnq].first <= kq) ++nnq;

  if (!diverges) {
    ++fast_scores_;
    double reach = 0.0;
    for (std::size_t t = 0; t < nnq; ++t) {
      reach += std::max(k_dist_[nbuf_[t].second], nbuf_[t].first);
    }
    const double lrd_q =
        static_cast<double>(nnq) / std::max(reach, kLofDistanceFloor);
    double ratio_sum = 0.0;
    for (std::size_t t = 0; t < nnq; ++t) {
      ratio_sum += lrd_[nbuf_[t].second] / lrd_q;
    }
    return ratio_sum / static_cast<double>(nnq);
  }

  // Virtual insert: evaluate the model of reference+query without touching
  // the caches. Inserting q can only shrink a point's k-distance (or grow
  // its neighborhood on a tie), and only for points with d(q, .) <= k_dist;
  // everything q's score depends on is re-derived below from those virtual
  // k-distances, the matrix, and q's distance row.
  ++fallback_scores_;
  vkd_.resize(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    // Dead slots fail the gate (sentinel query distance vs zero
    // k-distance) and keep their zero; they can never be gathered below.
    vkd_[i] = qd_[i] <= k_dist_[i]
                  ? kth_distance(dist_.data() + i * cap, qd_[i])
                  : k_dist_[i];
  }
  double reach = 0.0;
  for (std::size_t t = 0; t < nnq; ++t) {
    reach += std::max(vkd_[nbuf_[t].second], nbuf_[t].first);
  }
  const double lrd_q =
      static_cast<double>(nnq) / std::max(reach, kLofDistanceFloor);
  double ratio_sum = 0.0;
  for (std::size_t t = 0; t < nnq; ++t) {
    const auto [dqj, j] = nbuf_[t];
    const double vkdj = vkd_[j];
    const double* row = dist_.data() + j * cap;
    nbuf2_.clear();
    for (std::size_t m = 0; m < cap; ++m) {
      const double d = row[m];  // sentinel on diagonal/dead, never gathered
      if (d <= vkdj) nbuf2_.emplace_back(d, m);
    }
    // The query joins j's neighborhood under index cap — past every slot,
    // so it stays last among distance ties, exactly where lof_scores
    // (query appended at batch index n) would sort it.
    if (qd_[j] <= vkdj) nbuf2_.emplace_back(qd_[j], cap);
    std::sort(nbuf2_.begin(), nbuf2_.end());
    double r = 0.0;
    for (const auto& [d, m] : nbuf2_) {
      r += std::max(m == cap ? kq : vkd_[m], d);
    }
    const double lrd_j = static_cast<double>(nbuf2_.size()) /
                         std::max(r, kLofDistanceFloor);
    ratio_sum += lrd_j / lrd_q;
  }
  return ratio_sum / static_cast<double>(nnq);
}

}  // namespace skh::ml
