#include "ml/streaming_lof.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace skh::ml {

namespace {
// Slot-mask sentinel: orders of magnitude above any real distance, so the
// self-distance and dead-slot cells never rank as neighbors, yet finite
// so the branch-free masked arithmetic below cannot produce 0 * inf = NaN.
constexpr double kDiagonal = 1e300;

// The matrix stores *squared* distances, clamped to the squared floor, and
// every consumer takes sqrt at the last moment. This is exact, not an
// approximation: for any double x, sqrt(fl(x*x)) == x (the squaring error
// is below half an ulp of the square root), so max(floor, sqrt(sq)) is
// bit-identical to the max(floor, euclidean_distance(...)) the batch
// scorer computes — while the scoring-time matrix build does one sqrt per
// consumed value instead of one per cell. Ordering comparisons
// (k-distance gates, top-s selection) are monotone under squaring, so
// they run directly in the squared domain.
constexpr double kFloorSq = kLofDistanceFloor * kLofDistanceFloor;

// Same accumulation order as dsp::euclidean_distance, minus the final
// sqrt, so the deferred sqrt reproduces its result bit-for-bit. Symmetric
// in its arguments (negating a difference is exact), so the matrix build
// may compute each unordered pair once.
inline double squared_distance(const double* __restrict a,
                               const double* __restrict b,
                               std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// Section starts round up to 8 doubles = one cache line, so each section
// begins on a line boundary of the 64-byte-aligned arena.
constexpr std::size_t round_line(std::size_t doubles) noexcept {
  return (doubles + 7) & ~std::size_t{7};
}
}  // namespace

StreamingLof::StreamingLof(LofConfig cfg, std::size_t capacity_hint)
    : cfg_(cfg), cap_(capacity_hint) {
  if (cfg_.k_neighbors == 0) {
    throw std::invalid_argument("StreamingLof: k_neighbors must be > 0");
  }
  // The arena itself is laid out by the first push: the point dimension is
  // not known until then, and a never-pushed model (most pairs early in a
  // campaign) should not hold memory.
}

void StreamingLof::grow(std::size_t min_cap) {
  // cap_ holds the un-materialized hint until the first push lays the
  // arena out; only a real, occupied ring doubles.
  const std::size_t old_cap = arena_.empty() ? 0 : cap_;
  const std::size_t cap =
      std::max({static_cast<std::size_t>(8), old_cap * 2, min_cap});
  const std::size_t s = 2 * cfg_.k_neighbors;
  // Fresh arena, every section starting on a cache-line boundary. The
  // survivors re-lay compacted in age order (head back to slot 0); the
  // distance matrix is scratch and simply re-materializes at the next
  // score, now against the new capacity.
  const std::size_t kdist_off = round_line(cap * dim_);
  const std::size_t lrd_off = kdist_off + round_line(cap);
  const std::size_t top_off = lrd_off + round_line(cap);
  std::vector<double, common::ArenaAllocator<double>> na(
      top_off + round_line(cap * s), 0.0);
  for (std::size_t a = 0; a < size_; ++a) {
    const std::size_t oa = (head_ + a) % old_cap;
    std::copy_n(arena_.data() + oa * dim_, dim_, na.data() + a * dim_);
  }
  arena_ = std::move(na);
  kdist_off_ = kdist_off;
  lrd_off_ = lrd_off;
  top_off_ = top_off;
  cap_ = cap;
  head_ = 0;
  dmat_.clear();
  dmat_.shrink_to_fit();
  n_nbrs_.assign(cap, 0);
  top_len_.assign(cap, 0);
  mat_dirty_ = true;
  top_dirty_ = true;
}

void StreamingLof::ensure_matrix() {
  if (!mat_dirty_ && dmat_.size() == cap_ * cap_) return;
  // First score after a ring change: materialize every live pairwise
  // distance. O(size² · dim) — but `size` is the look-back depth, the
  // whole matrix fits in a couple of KB, and the magnitude gate makes
  // scoring (and therefore this) rare. The allocation happens at most
  // once per capacity, and only ever for models that actually score.
  dmat_.assign(cap_ * cap_, kDiagonal);
  const double* __restrict P = pts();
  double* __restrict D = dmat_.data();
  for (std::size_t a = 1; a < size_; ++a) {
    const std::size_t i = (head_ + a) % cap_;
    const double* pi = P + i * dim_;
    std::size_t j = head_;  // increment-wrap; see push
    for (std::size_t b = 0; b < a; ++b) {
      const double d =
          std::max(kFloorSq, squared_distance(pi, P + j * dim_, dim_));
      D[i * cap_ + j] = d;
      D[j * cap_ + i] = d;
      if (++j == cap_) j = 0;
    }
  }
  mat_dirty_ = false;
}

void StreamingLof::build_top(std::size_t i) {
  const std::size_t s = 2 * cfg_.k_neighbors;
  const double* __restrict row = dmat_.data() + i * cap_;
  double* __restrict buf = top() + i * s;
  // Streaming top-s over the full row via a branch-free insertion network;
  // the sentinel on the diagonal and dead cells sorts past every real
  // distance.
  for (std::size_t p = 0; p < s; ++p) buf[p] = kDiagonal;
  for (std::size_t j = 0; j < cap_; ++j) {
    double d = row[j];
    for (std::size_t p = 0; p < s; ++p) {
      const double lo = std::min(buf[p], d);
      d = std::max(buf[p], d);
      buf[p] = lo;
    }
  }
  std::size_t len = std::min(size_ > 0 ? size_ - 1 : 0, s);
  top_len_[i] = len;
}

void StreamingLof::push(std::span<const double> point) {
  if (dim_ == 0) {
    dim_ = point.size();
  } else if (point.size() != dim_) {
    throw std::invalid_argument("StreamingLof: mixed point dimensions");
  }
  if (arena_.empty() || size_ == cap_) {
    // First push lays the arena out at the hinted capacity (the look-back
    // depth); an over-full ring doubles.
    grow(size_ == cap_ ? size_ + 1 : std::max<std::size_t>(cap_, 1));
  }
  // The whole push: copy the point into its ring slot and invalidate the
  // caches. No distances — on the gated steady state (almost every close)
  // nothing will ever ask for them, and the slot's stale state from a
  // previous occupant needs no scrubbing because every derived value is
  // rebuilt from live points only.
  const std::size_t slot = (head_ + size_) % cap_;
  std::copy_n(point.data(), dim_, pts() + slot * dim_);
  ++size_;
  mat_dirty_ = true;
  top_dirty_ = true;
  kd_dirty_ = true;
  lrd_dirty_ = true;
}

void StreamingLof::pop_front() {
  if (size_ == 0) return;
  // O(1), and deliberately touching nothing but this object's own line:
  // the dead slot simply stops being consulted (its candidate buffer goes
  // stale, but `top_dirty_` below forces a rebuild before any score reads
  // buffers again), and the push that reuses it overwrites its point.
  head_ = (head_ + 1) % cap_;
  --size_;
  mat_dirty_ = true;
  top_dirty_ = true;
  kd_dirty_ = true;
  lrd_dirty_ = true;
}

double StreamingLof::kth_distance(const double* row, double extra) {
  const std::size_t k = cfg_.k_neighbors;
  if (kbuf_.size() < k) kbuf_.resize(k);  // lazy: only scoring needs it
  double* kb = kbuf_.data();
  std::size_t filled = 0;
  const auto consider = [&](double d) {
    std::size_t pos;
    if (filled < k) {
      pos = filled++;
    } else if (d < kb[k - 1]) {
      pos = k - 1;
    } else {
      return;
    }
    while (pos > 0 && kb[pos - 1] > d) {
      kb[pos] = kb[pos - 1];
      --pos;
    }
    kb[pos] = d;
  };
  // Sentinel-valued diagonal and dead cells can never be the k-th
  // smallest when >= k live entries exist, so the sweep needs no
  // liveness branch.
  for (std::size_t j = 0; j < cap_; ++j) consider(row[j]);
  if (extra >= 0.0) consider(extra);
  return kb[k - 1];
}

void StreamingLof::ensure_kdist() {
  if (!kd_dirty_) return;
  ensure_matrix();
  // The candidate buffers are deliberately NOT maintained on push/pop:
  // the detector's O(1) magnitude gate skips scoring on almost every
  // window close, so paying per-close buffer maintenance to make this
  // read O(1) was backwards. Instead push/pop just flip dirty bits, and
  // the rare close that actually scores rebuilds every live buffer from
  // its matrix row here (counted per entry in `kdist_rebuilds`). Repeated
  // scores without an intervening push/pop still read the buffers for
  // free.
  const std::size_t k = cfg_.k_neighbors;
  const std::size_t s = 2 * k;
  for (std::size_t i = 0; i < cap_; ++i) {
    if (!is_live(i)) {
      // Zero keeps dead slots out of the query-divergence test (their
      // sentinel query distance can never be <= 0) while staying finite
      // for the masked reach arithmetic.
      k_dist()[i] = 0.0;
      continue;
    }
    if (top_dirty_ || top_len_[i] < k) {
      ++kdist_rebuilds_;
      build_top(i);
    }
    k_dist()[i] = top()[i * s + k - 1];
  }
  top_dirty_ = false;
  kd_dirty_ = false;
}

std::pair<double, std::size_t> StreamingLof::density_of(
    std::size_t i) const noexcept {
  const std::size_t n = cap_;
  // Restrict-qualified locals: the buffers provably never alias, but the
  // compiler cannot see that through `this`. Reach distances are summed
  // in slot rather than distance order — addition reordering only, within
  // the documented FP tolerance of the batch scorer. The arithmetic mask
  // adds an exact 0.0 for excluded slots (diagonal and dead cells carry
  // the sentinel), so included terms are bit-identical to a branchy
  // gather.
  const double* __restrict row = dmat_.data() + i * cap_;
  const double* __restrict kds = k_dist();
  const double kd = kds[i];
  double reach = 0.0;
  std::size_t nn = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = row[j];
    const bool in = d <= kd;
    // sqrt(max(sq_a, sq_b)) == max(a, b); masked slots add an exact 0.0
    // (the sentinel's sqrt is finite, and `in` is 0).
    reach += static_cast<double>(in) * std::sqrt(std::max(kds[j], d));
    nn += in;
  }
  return {static_cast<double>(nn) / std::max(reach, kLofDistanceFloor), nn};
}

void StreamingLof::refresh() {
  ensure_kdist();
  for (std::size_t i = 0; i < cap_; ++i) {
    if (is_live(i)) {
      const auto [lrd_i, nn] = density_of(i);
      lrd()[i] = lrd_i;
      n_nbrs_[i] = nn;
    } else {
      lrd()[i] = 0.0;
      n_nbrs_[i] = 0;
    }
  }
  lrd_dirty_ = false;
}

double StreamingLof::last_score() {
  const std::size_t k = cfg_.k_neighbors;
  // Reference = everything but the newest point; <= k of those is the
  // batch scorer's neutral regime.
  if (size_ == 0 || size_ - 1 <= k) return 1.0;
  ensure_kdist();
  ++fast_scores_;
  const std::size_t q = (head_ + size_ - 1) % cap_;
  const double* __restrict row = dmat_.data() + q * cap_;
  const double kd = k_dist()[q];
  // Only the newest point's own density and its neighbors' densities feed
  // the score, so compute just those instead of refreshing the full
  // table. The sweep covers every slot: the diagonal and dead cells carry
  // the sentinel and can never pass the k-distance gate.
  const auto [lrd_q, nn_q] = density_of(q);
  double ratio_sum = 0.0;
  for (std::size_t m = 0; m < cap_; ++m) {
    if (row[m] <= kd) ratio_sum += density_of(m).first / lrd_q;
  }
  return ratio_sum / static_cast<double>(nn_q);
}

double StreamingLof::score(std::span<const double> query) {
  const std::size_t k = cfg_.k_neighbors;
  if (size_ <= k) return 1.0;
  if (kd_dirty_ || lrd_dirty_) refresh();
  const std::size_t cap = cap_;

  qd_.resize(cap);
  bool diverges = false;
  for (std::size_t i = 0; i < cap; ++i) {
    if (!is_live(i)) {
      qd_[i] = kDiagonal;  // sorts past every live entry, gates nothing
      continue;
    }
    const double d = std::max(
        kFloorSq, squared_distance(query.data(), pts() + i * dim_, dim_));
    qd_[i] = d;
    // The cached model stays valid only while the query sits strictly
    // outside every k-distance ball: at d <= k_dist the query enters (or
    // ties into) that point's neighborhood and the densities shift.
    if (d <= k_dist()[i]) diverges = true;
  }
  nbuf_.clear();
  for (std::size_t i = 0; i < cap; ++i) nbuf_.emplace_back(qd_[i], i);
  std::sort(nbuf_.begin(), nbuf_.end());
  const double kq = nbuf_[k - 1].first;
  std::size_t nnq = k;
  while (nnq < size_ && nbuf_[nnq].first <= kq) ++nnq;

  if (!diverges) {
    ++fast_scores_;
    double reach = 0.0;
    for (std::size_t t = 0; t < nnq; ++t) {
      reach += std::sqrt(std::max(k_dist()[nbuf_[t].second], nbuf_[t].first));
    }
    const double lrd_q =
        static_cast<double>(nnq) / std::max(reach, kLofDistanceFloor);
    double ratio_sum = 0.0;
    for (std::size_t t = 0; t < nnq; ++t) {
      ratio_sum += lrd()[nbuf_[t].second] / lrd_q;
    }
    return ratio_sum / static_cast<double>(nnq);
  }

  // Virtual insert: evaluate the model of reference+query without touching
  // the caches. Inserting q can only shrink a point's k-distance (or grow
  // its neighborhood on a tie), and only for points with d(q, .) <= k_dist;
  // everything q's score depends on is re-derived below from those virtual
  // k-distances, the matrix, and q's distance row.
  ++fallback_scores_;
  vkd_.resize(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    // Dead slots fail the gate (sentinel query distance vs zero
    // k-distance) and keep their zero; they can never be gathered below.
    vkd_[i] = qd_[i] <= k_dist()[i]
                  ? kth_distance(dmat_.data() + i * cap, qd_[i])
                  : k_dist()[i];
  }
  double reach = 0.0;
  for (std::size_t t = 0; t < nnq; ++t) {
    reach += std::sqrt(std::max(vkd_[nbuf_[t].second], nbuf_[t].first));
  }
  const double lrd_q =
      static_cast<double>(nnq) / std::max(reach, kLofDistanceFloor);
  double ratio_sum = 0.0;
  for (std::size_t t = 0; t < nnq; ++t) {
    const auto [dqj, j] = nbuf_[t];
    const double vkdj = vkd_[j];
    const double* row = dmat_.data() + j * cap;
    nbuf2_.clear();
    for (std::size_t m = 0; m < cap; ++m) {
      const double d = row[m];  // sentinel on diagonal/dead, never gathered
      if (d <= vkdj) nbuf2_.emplace_back(d, m);
    }
    // The query joins j's neighborhood under index cap — past every slot,
    // so it stays last among distance ties, exactly where lof_scores
    // (query appended at batch index n) would sort it.
    if (qd_[j] <= vkdj) nbuf2_.emplace_back(qd_[j], cap);
    std::sort(nbuf2_.begin(), nbuf2_.end());
    double r = 0.0;
    for (const auto& [d, m] : nbuf2_) {
      r += std::sqrt(std::max(m == cap ? kq : vkd_[m], d));
    }
    const double lrd_j = static_cast<double>(nbuf2_.size()) /
                         std::max(r, kLofDistanceFloor);
    ratio_sum += lrd_j / lrd_q;
  }
  return ratio_sum / static_cast<double>(nnq);
}

}  // namespace skh::ml
