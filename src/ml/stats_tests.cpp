#include "ml/stats_tests.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace skh::ml {

double LogNormalModel::median() const { return std::exp(mu); }

double LogNormalModel::mean() const {
  return std::exp(mu + sigma * sigma / 2.0);
}

double LogNormalModel::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu) / sigma);
}

LogNormalModel fit_lognormal(std::span<const double> samples) {
  std::vector<double> logs;
  logs.reserve(samples.size());
  for (double x : samples) {
    if (x > 0.0) logs.push_back(std::log(x));
  }
  if (logs.size() < 2) {
    throw std::invalid_argument("fit_lognormal: need >= 2 positive samples");
  }
  double mean = 0.0;
  for (double y : logs) mean += y;
  mean /= static_cast<double>(logs.size());
  double var = 0.0;
  for (double y : logs) var += (y - mean) * (y - mean);
  var /= static_cast<double>(logs.size());  // MLE uses 1/n
  LogNormalModel m;
  m.mu = mean;
  m.sigma = std::sqrt(var);
  m.n = logs.size();
  return m;
}

LogNormalModel fit_lognormal(const RunningStats& log_stats) {
  if (log_stats.count() < 2) {
    throw std::invalid_argument("fit_lognormal: need >= 2 positive samples");
  }
  LogNormalModel m;
  m.mu = log_stats.mean();
  m.sigma = std::sqrt(log_stats.population_variance());
  m.n = log_stats.count();
  return m;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

ZTestResult z_test(const LogNormalModel& model, std::span<const double> window,
                   double alpha) {
  ZTestResult r;
  std::vector<double> logs;
  logs.reserve(window.size());
  for (double x : window) {
    if (x > 0.0) logs.push_back(std::log(x));
  }
  if (logs.empty() || model.sigma <= 0.0) return r;  // cannot test; accept H0
  double mean = 0.0;
  for (double y : logs) mean += y;
  mean /= static_cast<double>(logs.size());
  // The baseline mu is itself an estimate from model.n samples; under H0
  // the difference of the two log-means has variance
  // sigma^2 (1/n_window + 1/n_baseline). Ignoring the second term inflates
  // z by up to sqrt(2) and multiplies the false-alarm rate.
  const double n_window = static_cast<double>(logs.size());
  const double n_baseline =
      model.n > 0 ? static_cast<double>(model.n) : n_window;
  const double se =
      model.sigma * std::sqrt(1.0 / n_window + 1.0 / n_baseline);
  r.z = (mean - model.mu) / se;
  r.p_value = 2.0 * (1.0 - normal_cdf(std::abs(r.z)));
  r.reject = r.p_value < alpha;
  return r;
}

ZTestResult z_test(const LogNormalModel& model,
                   const RunningStats& window_log_stats, double alpha) {
  ZTestResult r;
  if (window_log_stats.count() == 0 || model.sigma <= 0.0) return r;
  const double n_window = static_cast<double>(window_log_stats.count());
  const double n_baseline =
      model.n > 0 ? static_cast<double>(model.n) : n_window;
  const double se =
      model.sigma * std::sqrt(1.0 / n_window + 1.0 / n_baseline);
  r.z = (window_log_stats.mean() - model.mu) / se;
  r.p_value = 2.0 * (1.0 - normal_cdf(std::abs(r.z)));
  r.reject = r.p_value < alpha;
  return r;
}

}  // namespace skh::ml
