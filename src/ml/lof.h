// Local Outlier Factor (Breunig et al., SIGMOD'00) — the short-term latency
// anomaly detector of §5.2.
//
// Each 30-second window of an endpoint pair's latency samples becomes a
// seven-dimensional point {p25, p50, p75, min, mean, std, max}; the analyzer
// keeps a five-minute look-back of such points and flags a new window whose
// LOF score is high relative to the look-back population.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace skh::ml {

struct LofConfig {
  std::size_t k_neighbors = 3;   ///< MinPts parameter of LOF
  double outlier_threshold = 1.5;  ///< score above which a point is anomalous
};

/// Lower bound applied to every pairwise distance (and reachability sum) so
/// duplicate points cannot produce infinite densities. Shared by the batch
/// scorer and `StreamingLof`, whose results must agree bit-for-bit.
inline constexpr double kLofDistanceFloor = 1e-12;

/// LOF score for every point in `points` (score ~1 for inliers, >> 1 for
/// outliers). Handles duplicate points via a distance floor. Points must all
/// have the same dimension; fewer points than k+1 yields all-1 scores.
[[nodiscard]] std::vector<double> lof_scores(
    const std::vector<std::vector<double>>& points, const LofConfig& cfg = {});

/// LOF score of a single query point with respect to a reference population
/// (the look-back windows), without the query influencing the model.
[[nodiscard]] double lof_score_of(
    std::span<const double> query,
    const std::vector<std::vector<double>>& reference,
    const LofConfig& cfg = {});

}  // namespace skh::ml
