// Log-normal modelling and the Z-test used by long-term anomaly detection
// (§5.2, Figure 14).
//
// Healthy long-term RTTs between two RNICs follow a log-normal distribution:
// Y = ln(X) ~ N(mu, sigma^2). The analyzer fits (mu, sigma) over a 30-minute
// baseline window and Z-tests each subsequent 30-minute window's log-mean
// against the fitted model; a significant deviation flags gradual
// degradation that the short-term LOF detector would absorb.
#pragma once

#include <span>

#include "common/stats.h"

namespace skh::ml {

/// Fitted log-normal model of a latency population.
struct LogNormalModel {
  double mu = 0.0;     ///< mean of ln(X)
  double sigma = 1.0;  ///< stddev of ln(X)
  std::size_t n = 0;   ///< sample size used for the fit

  /// Median of X (= exp(mu)).
  [[nodiscard]] double median() const;
  /// Mean of X (= exp(mu + sigma^2/2)).
  [[nodiscard]] double mean() const;
  /// CDF of X at x.
  [[nodiscard]] double cdf(double x) const;
};

/// Maximum-likelihood fit of a log-normal to strictly positive samples.
/// Non-positive samples are skipped (they cannot be genuine RTTs).
/// Throws std::invalid_argument if fewer than two usable samples exist.
[[nodiscard]] LogNormalModel fit_lognormal(std::span<const double> samples);

/// Fit from streaming log-domain moments: `log_stats` must have accumulated
/// ln(x) of each strictly positive sample. The MLE sigma uses the
/// population (1/n) variance, matching the span overload; lets the
/// streaming anomaly pipeline fit a 30-minute window without retaining it.
/// Throws std::invalid_argument on fewer than two samples.
[[nodiscard]] LogNormalModel fit_lognormal(const RunningStats& log_stats);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Result of a two-sided Z-test of a window's log-mean against a model.
struct ZTestResult {
  double z = 0.0;        ///< standardized deviation of the window log-mean
  double p_value = 1.0;  ///< two-sided p-value
  bool reject = false;   ///< true iff p_value < alpha
};

/// Test whether `window` is consistent with `model`: under H0 the window's
/// log-mean is N(mu, sigma^2 / n)-distributed. Rejection indicates the
/// latency distribution has shifted (Figure 14's T+1h / T+1.5h case).
[[nodiscard]] ZTestResult z_test(const LogNormalModel& model,
                                 std::span<const double> window,
                                 double alpha = 0.001);

/// Z-test a window supplied as streaming log-domain moments (ln(x) per
/// positive sample) — the streaming twin of the span overload.
[[nodiscard]] ZTestResult z_test(const LogNormalModel& model,
                                 const RunningStats& window_log_stats,
                                 double alpha = 0.001);

}  // namespace skh::ml
