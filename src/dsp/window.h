// Analysis window functions for the STFT.
#pragma once

#include <span>
#include <vector>

namespace skh::dsp {

enum class WindowKind { kRect, kHann, kHamming };

/// Window coefficients of length n.
[[nodiscard]] std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Multiply `frame` elementwise by `window` (sizes must match).
void apply_window(std::span<double> frame, std::span<const double> window);

}  // namespace skh::dsp
