// Fourier transforms.
//
// Traffic-skeleton inference converts each RNIC's throughput burst series to
// the frequency domain (§5.1). The paper evaluated STFT, plain DFT, and
// wavelets; we provide all three (the latter two for the ablation bench).
// The FFT is an in-place iterative radix-2 Cooley-Tukey over power-of-two
// sizes; `dft` is the O(n^2) reference used for arbitrary sizes and testing.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace skh::dsp {

using Complex = std::complex<double>;

/// True iff n is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// In-place radix-2 FFT. `data.size()` must be a power of two.
/// `inverse` applies the conjugate transform and 1/N scaling.
void fft_inplace(std::span<Complex> data, bool inverse = false);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length = padded size).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> signal);

/// Reference O(n^2) DFT of a real signal (no padding). Used in tests and as
/// the paper's "plain DFT" ablation alternative.
[[nodiscard]] std::vector<Complex> dft_real(std::span<const double> signal);

/// Magnitude spectrum |X[k]| for k in [0, N/2] (one-sided).
[[nodiscard]] std::vector<double> magnitude_spectrum(
    std::span<const Complex> spectrum);

/// Circular cross-correlation of two equal-length real signals via FFT.
/// result[lag] = sum_t a[t] * b[(t + lag) mod N].
[[nodiscard]] std::vector<double> circular_xcorr(std::span<const double> a,
                                                 std::span<const double> b);

/// Lag (in samples, range [-N/2, N/2)) at which b best matches a shifted
/// copy of itself; positive lag means b lags a. Used to order pipeline
/// stages from burst time shifts (§5.1).
[[nodiscard]] int best_lag(std::span<const double> a,
                           std::span<const double> b);

}  // namespace skh::dsp
