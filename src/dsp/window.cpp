#include "dsp/window.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace skh::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  switch (kind) {
    case WindowKind::kRect:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                    static_cast<double>(i) / denom);
      }
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                                      static_cast<double>(i) / denom);
      }
      break;
  }
  return w;
}

void apply_window(std::span<double> frame, std::span<const double> window) {
  if (frame.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
}

}  // namespace skh::dsp
