#include "dsp/wavelet.h"

#include <cmath>

#include "dsp/fft.h"

namespace skh::dsp {

std::vector<double> haar_dwt(std::span<const double> signal) {
  const std::size_t n = next_pow2(std::max<std::size_t>(signal.size(), 1));
  std::vector<double> data(n, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];

  static const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> tmp(n);
  for (std::size_t len = n; len >= 2; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = (data[2 * i] + data[2 * i + 1]) * inv_sqrt2;        // approx
      tmp[half + i] = (data[2 * i] - data[2 * i + 1]) * inv_sqrt2; // detail
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<long>(len), data.begin());
  }
  return data;
}

std::vector<double> haar_feature(std::span<const double> signal) {
  const auto coeffs = haar_dwt(signal);
  const std::size_t n = coeffs.size();
  std::vector<double> energies;
  // Detail bands occupy [len/2, len) for len = 2, 4, ..., n.
  for (std::size_t len = 2; len <= n; len *= 2) {
    double e = 0.0;
    for (std::size_t i = len / 2; i < len; ++i) e += coeffs[i] * coeffs[i];
    energies.push_back(e);
  }
  double norm = 0.0;
  for (double e : energies) norm += e * e;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& e : energies) e /= norm;
  }
  return energies;
}

}  // namespace skh::dsp
