// Haar discrete wavelet transform — the paper's rejected feature-extraction
// alternative (§5.1), kept for the ablation bench comparing STFT vs DFT vs
// wavelet features.
#pragma once

#include <span>
#include <vector>

namespace skh::dsp {

/// Full multi-level Haar DWT of a power-of-two-length signal (zero-padded
/// otherwise). Output layout: [approx | detail_Lmax | ... | detail_1].
[[nodiscard]] std::vector<double> haar_dwt(std::span<const double> signal);

/// Per-level detail energies of the Haar DWT, L2-normalized — a compact
/// scale-distribution feature comparable to stft_feature().
[[nodiscard]] std::vector<double> haar_feature(std::span<const double> signal);

}  // namespace skh::dsp
