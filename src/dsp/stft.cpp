#include "dsp/stft.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace skh::dsp {

Spectrogram stft(std::span<const double> signal, const StftConfig& cfg) {
  if (!is_pow2(cfg.frame_size)) {
    throw std::invalid_argument("stft: frame_size must be a power of two");
  }
  if (cfg.hop == 0) throw std::invalid_argument("stft: hop must be > 0");

  Spectrogram out;
  out.frame_size = cfg.frame_size;
  out.hop = cfg.hop;
  const auto window = make_window(cfg.window, cfg.frame_size);

  for (std::size_t start = 0; start < signal.size(); start += cfg.hop) {
    std::vector<Complex> frame(cfg.frame_size, Complex{});
    const std::size_t avail = std::min(cfg.frame_size, signal.size() - start);
    // Demean the frame before windowing: mean throughput reflects message
    // sizes, not periodicity, and would otherwise leak through the window
    // into the low bins.
    double mean = 0.0;
    for (std::size_t i = 0; i < avail; ++i) mean += signal[start + i];
    if (avail > 0) mean /= static_cast<double>(avail);
    for (std::size_t i = 0; i < avail; ++i) {
      frame[i] = Complex{(signal[start + i] - mean) * window[i], 0.0};
    }
    fft_inplace(frame);
    std::vector<double> mags(cfg.frame_size / 2 + 1);
    for (std::size_t k = 0; k < mags.size(); ++k) mags[k] = std::abs(frame[k]);
    out.frames.push_back(std::move(mags));
    if (start + cfg.frame_size >= signal.size()) break;
  }
  return out;
}

std::vector<double> stft_feature(const Spectrogram& spec) {
  if (spec.frames.empty()) return {};
  std::vector<double> feat(spec.num_bins(), 0.0);
  for (const auto& frame : spec.frames) {
    for (std::size_t k = 0; k < feat.size(); ++k) feat[k] += frame[k];
  }
  // Drop the DC bin from the similarity signal: it only encodes mean
  // throughput, which differs with message sizes even within one
  // parallelism group. Periodicity lives in the non-DC bins.
  if (!feat.empty()) feat[0] = 0.0;
  double norm = 0.0;
  for (double v : feat) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& v : feat) v /= norm;
  }
  return feat;
}

std::vector<double> stft_feature(std::span<const double> signal,
                                 const StftConfig& cfg) {
  return stft_feature(stft(signal, cfg));
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: size mismatch");
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace skh::dsp
