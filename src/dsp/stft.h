// Short-Time Fourier Transform and the spectral feature vector used by
// traffic-skeleton inference (§5.1).
//
// SkeletonHunter chose STFT over plain DFT and wavelets because it captures
// the time-varying character of burst cycles at the lowest runtime cost.
// The feature vector averages per-frame magnitude spectra so that RNICs in
// the same parallelism position — which see the same periodic bursts — land
// close together for the downstream clustering step.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "dsp/window.h"

namespace skh::dsp {

struct StftConfig {
  std::size_t frame_size = 64;   ///< samples per analysis frame (power of 2)
  std::size_t hop = 32;          ///< hop between frame starts
  WindowKind window = WindowKind::kHann;
};

/// Spectrogram: frames x (frame_size/2 + 1) one-sided magnitudes.
struct Spectrogram {
  std::size_t frame_size = 0;
  std::size_t hop = 0;
  std::vector<std::vector<double>> frames;  ///< magnitude per frame

  [[nodiscard]] std::size_t num_frames() const noexcept {
    return frames.size();
  }
  [[nodiscard]] std::size_t num_bins() const noexcept {
    return frames.empty() ? 0 : frames.front().size();
  }
};

/// Compute the magnitude spectrogram of `signal`. The tail shorter than one
/// frame is zero-padded so no samples are dropped.
[[nodiscard]] Spectrogram stft(std::span<const double> signal,
                               const StftConfig& cfg = {});

/// Time-averaged magnitude spectrum of the spectrogram, L2-normalized.
/// This is the "STFT feature" compared across RNICs in Figure 13.
[[nodiscard]] std::vector<double> stft_feature(const Spectrogram& spec);

/// Convenience: signal -> normalized feature in one call.
[[nodiscard]] std::vector<double> stft_feature(std::span<const double> signal,
                                               const StftConfig& cfg = {});

/// Cosine similarity of two equal-length feature vectors, in [-1, 1].
[[nodiscard]] double cosine_similarity(std::span<const double> a,
                                       std::span<const double> b);

/// Euclidean distance between two equal-length feature vectors. Defined
/// inline: the streaming-LOF hot path computes one distance per ring row
/// per window close, and the out-of-line call (span setup + call + return
/// around a 7-element loop) cost more than the arithmetic. The summation
/// order is part of the contract — batch and streaming LOF compare scores
/// built from these exact values.
[[nodiscard]] inline double euclidean_distance(std::span<const double> a,
                                               std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_distance: size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace skh::dsp
