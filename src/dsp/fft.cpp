#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace skh::dsp {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> fft_real(std::span<const double> signal) {
  const std::size_t padded = next_pow2(std::max<std::size_t>(signal.size(), 1));
  std::vector<Complex> data(padded, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = Complex{signal[i], 0.0};
  fft_inplace(data);
  return data;
}

std::vector<Complex> dft_real(std::span<const double> signal) {
  const std::size_t n = signal.size();
  std::vector<Complex> out(n, Complex{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += signal[t] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> magnitude_spectrum(std::span<const Complex> spectrum) {
  const std::size_t half = spectrum.size() / 2 + 1;
  std::vector<double> mags(half);
  for (std::size_t k = 0; k < half; ++k) mags[k] = std::abs(spectrum[k]);
  return mags;
}

std::vector<double> circular_xcorr(std::span<const double> a,
                                   std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("circular_xcorr: size mismatch");
  }
  const std::size_t n = next_pow2(std::max<std::size_t>(a.size(), 1));
  std::vector<Complex> fa(n, Complex{}), fb(n, Complex{});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex{a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex{b[i], 0.0};
  fft_inplace(fa);
  fft_inplace(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] = std::conj(fa[i]) * fb[i];
  fft_inplace(fa, /*inverse=*/true);
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = fa[i].real();
  return out;
}

int best_lag(std::span<const double> a, std::span<const double> b) {
  const auto corr = circular_xcorr(a, b);
  const std::size_t n = corr.size();
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (corr[i] > corr[best]) best = i;
  }
  // Map [0, n) to signed lag [-n/2, n/2).
  auto lag = static_cast<long>(best);
  if (lag >= static_cast<long>(n / 2)) lag -= static_cast<long>(n);
  return static_cast<int>(lag);
}

}  // namespace skh::dsp
